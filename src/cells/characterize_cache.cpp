#include "cells/characterize_cache.h"

#include <cstdlib>

#include "cache/cache.h"
#include "cells/cell_types.h"
#include "simd/simd.h"

namespace lvf2::cells {

namespace {

using obs::JsonValue;

// --- key hashing ---------------------------------------------------

void feed_mosfet(cache::KeyHasher& h, const spice::Mosfet& m) {
  h.feed(m.is_nmos);
  h.feed(m.drive);
  h.feed(static_cast<std::uint64_t>(m.stack));
  h.feed(static_cast<std::uint64_t>(m.parallel));
}

void feed_stage(cache::KeyHasher& h, const spice::StageElectrical& s) {
  feed_mosfet(h, s.pull);
  h.feed(s.input_cap_pf);
  h.feed(s.internal_cap_pf);
  h.feed(s.mechanism_offset);
  h.feed(s.mechanism_base_scale);
  h.feed(s.mechanism_gain);
  h.feed(s.mechanism_gain_transition);
  h.feed(s.mechanism_width);
}

void feed_corner(cache::KeyHasher& h, const spice::ProcessCorner& c) {
  h.feed(c.vdd);
  h.feed(c.temp_c);
  h.feed(c.vth_n);
  h.feed(c.vth_p);
  h.feed(c.alpha);
  h.feed(c.kn);
  h.feed(c.kp);
  h.feed(c.sigma_vth_n);
  h.feed(c.sigma_vth_p);
  h.feed(c.sigma_len);
  h.feed(c.sigma_mob);
  h.feed(c.sigma_tox);
  h.feed(c.sigma_wid);
}

void feed_fit(cache::KeyHasher& h, const core::FitOptions& f) {
  h.feed(static_cast<std::uint64_t>(f.likelihood_bins));
  h.feed(static_cast<std::uint64_t>(f.em_max_iterations));
  h.feed(f.em_tolerance);
  h.feed(static_cast<std::uint64_t>(f.mstep_evaluations));
  h.feed(f.seed);
}

// --- JSON building helpers -----------------------------------------

JsonValue jnum(double v) {
  JsonValue j;
  j.type = JsonValue::Type::kNumber;
  j.number = v;
  return j;
}

JsonValue jstr(std::string s) {
  JsonValue j;
  j.type = JsonValue::Type::kString;
  j.string = std::move(s);
  return j;
}

JsonValue jbool(bool b) {
  JsonValue j;
  j.type = JsonValue::Type::kBool;
  j.boolean = b;
  return j;
}

JsonValue jobj() {
  JsonValue j;
  j.type = JsonValue::Type::kObject;
  return j;
}

// 64-bit integers (seeds) are stored as decimal strings: a JSON
// number is a double here and loses bits above 2^53.
JsonValue ju64(std::uint64_t v) { return jstr(std::to_string(v)); }

JsonValue moments_to_json(const stats::SnMoments& m) {
  JsonValue j = jobj();
  j.object.emplace_back("mean", jnum(m.mean));
  j.object.emplace_back("stddev", jnum(m.stddev));
  j.object.emplace_back("skewness", jnum(m.skewness));
  return j;
}

JsonValue lvf2_params_to_json(const core::Lvf2Parameters& p) {
  JsonValue j = jobj();
  j.object.emplace_back("lambda", jnum(p.lambda));
  j.object.emplace_back("theta1", moments_to_json(p.theta1));
  j.object.emplace_back("theta2", moments_to_json(p.theta2));
  return j;
}

JsonValue em_report_to_json(const core::EmReport& r) {
  JsonValue j = jobj();
  j.object.emplace_back("iterations",
                        jnum(static_cast<double>(r.iterations)));
  j.object.emplace_back("log_likelihood", jnum(r.log_likelihood));
  j.object.emplace_back("converged", jbool(r.converged));
  j.object.emplace_back("collapsed", jbool(r.collapsed));
  j.object.emplace_back("oscillated", jbool(r.oscillated));
  j.object.emplace_back("dropped_samples",
                        jnum(static_cast<double>(r.dropped_samples)));
  j.object.emplace_back("clipped_samples",
                        jnum(static_cast<double>(r.clipped_samples)));
  j.object.emplace_back("degradation",
                        jnum(static_cast<double>(r.degradation)));
  return j;
}

// --- JSON decoding helpers -----------------------------------------

bool read_num(const JsonValue& obj, std::string_view key, double* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) return false;
  *out = v->number;
  return true;
}

bool read_bool(const JsonValue& obj, std::string_view key, bool* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kBool) return false;
  *out = v->boolean;
  return true;
}

bool read_str(const JsonValue& obj, std::string_view key, std::string* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kString) return false;
  *out = v->string;
  return true;
}

bool read_size(const JsonValue& obj, std::string_view key, std::size_t* out) {
  double d = 0.0;
  if (!read_num(obj, key, &d) || d < 0) return false;
  *out = static_cast<std::size_t>(d);
  return true;
}

bool read_u64(const JsonValue& obj, std::string_view key,
              std::uint64_t* out) {
  std::string s;
  if (!read_str(obj, key, &s) || s.empty()) return false;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool read_moments(const JsonValue& obj, std::string_view key,
                  stats::SnMoments* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_object()) return false;
  return read_num(*v, "mean", &out->mean) &&
         read_num(*v, "stddev", &out->stddev) &&
         read_num(*v, "skewness", &out->skewness);
}

bool read_lvf2_params(const JsonValue& obj, std::string_view key,
                      core::Lvf2Parameters* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_object()) return false;
  return read_num(*v, "lambda", &out->lambda) &&
         read_moments(*v, "theta1", &out->theta1) &&
         read_moments(*v, "theta2", &out->theta2);
}

bool read_em_report(const JsonValue& obj, std::string_view key,
                    core::EmReport* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_object()) return false;
  double degradation = 0.0;
  if (!read_size(*v, "iterations", &out->iterations) ||
      !read_num(*v, "log_likelihood", &out->log_likelihood) ||
      !read_bool(*v, "converged", &out->converged) ||
      !read_bool(*v, "collapsed", &out->collapsed) ||
      !read_bool(*v, "oscillated", &out->oscillated) ||
      !read_size(*v, "dropped_samples", &out->dropped_samples) ||
      !read_size(*v, "clipped_samples", &out->clipped_samples) ||
      !read_num(*v, "degradation", &degradation)) {
    return false;
  }
  const int d = static_cast<int>(degradation);
  if (d < static_cast<int>(core::FitDegradation::kNone) ||
      d > static_cast<int>(core::FitDegradation::kRejected)) {
    return false;
  }
  out->degradation = static_cast<core::FitDegradation>(d);
  return true;
}

bool read_corner(const JsonValue& obj, std::string_view key,
                 spice::ProcessCorner* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_object()) return false;
  return read_num(*v, "vdd", &out->vdd) &&
         read_num(*v, "temp_c", &out->temp_c) &&
         read_num(*v, "vth_n", &out->vth_n) &&
         read_num(*v, "vth_p", &out->vth_p) &&
         read_num(*v, "alpha", &out->alpha) &&
         read_num(*v, "kn", &out->kn) &&
         read_num(*v, "kp", &out->kp) &&
         read_num(*v, "sigma_vth_n", &out->sigma_vth_n) &&
         read_num(*v, "sigma_vth_p", &out->sigma_vth_p) &&
         read_num(*v, "sigma_len", &out->sigma_len) &&
         read_num(*v, "sigma_mob", &out->sigma_mob) &&
         read_num(*v, "sigma_tox", &out->sigma_tox) &&
         read_num(*v, "sigma_wid", &out->sigma_wid);
}

bool read_fit(const JsonValue& obj, std::string_view key,
              core::FitOptions* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_object()) return false;
  return read_size(*v, "likelihood_bins", &out->likelihood_bins) &&
         read_size(*v, "em_max_iterations", &out->em_max_iterations) &&
         read_num(*v, "em_tolerance", &out->em_tolerance) &&
         read_size(*v, "mstep_evaluations", &out->mstep_evaluations) &&
         read_u64(*v, "seed", &out->seed);
}

}  // namespace

std::uint64_t entry_cache_key(const spice::ProcessCorner& corner,
                              const CharacterizeOptions& options,
                              const Cell& cell, const TimingArc& arc,
                              const std::string& arc_label,
                              std::size_t load_idx, std::size_t slew_idx) {
  cache::KeyHasher h;
  h.feed(kCharacterizeCacheSalt);
  // Kernel tier: SIMD tiers agree with scalar only within tolerance,
  // so entries fitted under one tier must not be replayed under
  // another.
  h.feed(static_cast<std::uint64_t>(simd::active_tier()));
  // Cell identity. The name participates because condition_seed hashes
  // it; family/inputs/drive pin down the rebuild path used by verify.
  h.feed(cell.name);
  h.feed(static_cast<std::uint64_t>(cell.family));
  h.feed(static_cast<std::uint64_t>(cell.inputs));
  h.feed(cell.drive);
  // Arc identity and electrics (the simulate_stage inputs).
  h.feed(arc_label);
  h.feed(arc.input_pin);
  h.feed(arc.output_pin);
  h.feed(arc.rise_output);
  feed_stage(h, arc.stage);
  // Grid condition: indices (seed derivation) and physical values.
  h.feed(static_cast<std::uint64_t>(load_idx));
  h.feed(static_cast<std::uint64_t>(slew_idx));
  h.feed(options.grid.slews_ns.at(slew_idx));
  h.feed(options.grid.loads_pf.at(load_idx));
  // Monte-Carlo config.
  h.feed(static_cast<std::uint64_t>(options.mc_samples));
  h.feed(options.use_lhs);
  h.feed(options.seed_base);
  feed_fit(h, options.fit);
  feed_corner(h, corner);
  return h.digest();
}

obs::JsonValue encode_cached_entry(const spice::ProcessCorner& corner,
                                   const CharacterizeOptions& options,
                                   const Cell& cell,
                                   const std::string& arc_label,
                                   std::size_t load_idx, std::size_t slew_idx,
                                   const ConditionCharacterization& entry,
                                   const obs::ArcQor* qor) {
  std::size_t arc_index = 0;
  for (std::size_t a = 0; a < cell.arcs.size(); ++a) {
    if (cell.arcs[a].label() == arc_label) {
      arc_index = a;
      break;
    }
  }

  JsonValue inputs = jobj();
  inputs.object.emplace_back("cell", jstr(cell.name));
  inputs.object.emplace_back("family",
                             jnum(static_cast<double>(
                                 static_cast<int>(cell.family))));
  inputs.object.emplace_back("inputs",
                             jnum(static_cast<double>(cell.inputs)));
  inputs.object.emplace_back("drive", jnum(cell.drive));
  inputs.object.emplace_back("arc_index",
                             jnum(static_cast<double>(arc_index)));
  inputs.object.emplace_back("arc_label", jstr(arc_label));
  inputs.object.emplace_back("load_idx",
                             jnum(static_cast<double>(load_idx)));
  inputs.object.emplace_back("slew_idx",
                             jnum(static_cast<double>(slew_idx)));
  inputs.object.emplace_back("slew_ns",
                             jnum(options.grid.slews_ns.at(slew_idx)));
  inputs.object.emplace_back("load_pf",
                             jnum(options.grid.loads_pf.at(load_idx)));
  inputs.object.emplace_back("mc_samples",
                             jnum(static_cast<double>(options.mc_samples)));
  inputs.object.emplace_back("use_lhs", jbool(options.use_lhs));
  inputs.object.emplace_back("seed_base", ju64(options.seed_base));

  JsonValue fit = jobj();
  fit.object.emplace_back(
      "likelihood_bins",
      jnum(static_cast<double>(options.fit.likelihood_bins)));
  fit.object.emplace_back(
      "em_max_iterations",
      jnum(static_cast<double>(options.fit.em_max_iterations)));
  fit.object.emplace_back("em_tolerance", jnum(options.fit.em_tolerance));
  fit.object.emplace_back(
      "mstep_evaluations",
      jnum(static_cast<double>(options.fit.mstep_evaluations)));
  fit.object.emplace_back("seed", ju64(options.fit.seed));
  inputs.object.emplace_back("fit", std::move(fit));

  JsonValue cj = jobj();
  cj.object.emplace_back("vdd", jnum(corner.vdd));
  cj.object.emplace_back("temp_c", jnum(corner.temp_c));
  cj.object.emplace_back("vth_n", jnum(corner.vth_n));
  cj.object.emplace_back("vth_p", jnum(corner.vth_p));
  cj.object.emplace_back("alpha", jnum(corner.alpha));
  cj.object.emplace_back("kn", jnum(corner.kn));
  cj.object.emplace_back("kp", jnum(corner.kp));
  cj.object.emplace_back("sigma_vth_n", jnum(corner.sigma_vth_n));
  cj.object.emplace_back("sigma_vth_p", jnum(corner.sigma_vth_p));
  cj.object.emplace_back("sigma_len", jnum(corner.sigma_len));
  cj.object.emplace_back("sigma_mob", jnum(corner.sigma_mob));
  cj.object.emplace_back("sigma_tox", jnum(corner.sigma_tox));
  cj.object.emplace_back("sigma_wid", jnum(corner.sigma_wid));
  inputs.object.emplace_back("corner", std::move(cj));

  JsonValue result = jobj();
  result.object.emplace_back("slew_ns", jnum(entry.condition.slew_ns));
  result.object.emplace_back("load_pf", jnum(entry.condition.load_pf));
  result.object.emplace_back("nominal_delay_ns",
                             jnum(entry.nominal_delay_ns));
  result.object.emplace_back("nominal_transition_ns",
                             jnum(entry.nominal_transition_ns));
  result.object.emplace_back("lvf_delay", moments_to_json(entry.lvf_delay));
  result.object.emplace_back("lvf_transition",
                             moments_to_json(entry.lvf_transition));
  result.object.emplace_back("lvf2_delay",
                             lvf2_params_to_json(entry.lvf2_delay));
  result.object.emplace_back("lvf2_transition",
                             lvf2_params_to_json(entry.lvf2_transition));
  result.object.emplace_back("lvf2_delay_report",
                             em_report_to_json(entry.lvf2_delay_report));
  result.object.emplace_back("lvf2_transition_report",
                             em_report_to_json(entry.lvf2_transition_report));

  JsonValue doc = jobj();
  doc.object.emplace_back("salt", ju64(kCharacterizeCacheSalt));
  doc.object.emplace_back("inputs", std::move(inputs));
  doc.object.emplace_back("result", std::move(result));
  if (qor != nullptr) {
    doc.object.emplace_back("qor", obs::arc_qor_to_json(*qor));
  }
  return doc;
}

std::optional<DecodedCacheEntry> decode_cached_entry(
    const obs::JsonValue& doc) {
  if (!doc.is_object()) return std::nullopt;
  const JsonValue* result = doc.find("result");
  if (result == nullptr || !result->is_object()) return std::nullopt;

  DecodedCacheEntry out;
  ConditionCharacterization& cc = out.entry;
  if (!read_num(*result, "slew_ns", &cc.condition.slew_ns) ||
      !read_num(*result, "load_pf", &cc.condition.load_pf) ||
      !read_num(*result, "nominal_delay_ns", &cc.nominal_delay_ns) ||
      !read_num(*result, "nominal_transition_ns",
                &cc.nominal_transition_ns) ||
      !read_moments(*result, "lvf_delay", &cc.lvf_delay) ||
      !read_moments(*result, "lvf_transition", &cc.lvf_transition) ||
      !read_lvf2_params(*result, "lvf2_delay", &cc.lvf2_delay) ||
      !read_lvf2_params(*result, "lvf2_transition", &cc.lvf2_transition) ||
      !read_em_report(*result, "lvf2_delay_report",
                      &cc.lvf2_delay_report) ||
      !read_em_report(*result, "lvf2_transition_report",
                      &cc.lvf2_transition_report)) {
    return std::nullopt;
  }
  // Only ok entries are stored, so the decoded status is the default
  // Status::ok().
  const JsonValue* qor = doc.find("qor");
  if (qor != nullptr) {
    out.qor = obs::arc_qor_from_json(*qor);
    if (!out.qor.has_value()) return std::nullopt;
  }
  return out;
}

std::optional<CachedEntryInputs> decode_cached_inputs(
    const obs::JsonValue& doc) {
  if (!doc.is_object()) return std::nullopt;
  CachedEntryInputs in;
  if (!read_u64(doc, "salt", &in.salt)) return std::nullopt;
  const JsonValue* inputs = doc.find("inputs");
  if (inputs == nullptr || !inputs->is_object()) return std::nullopt;
  double family = 0.0;
  double n_inputs = 0.0;
  if (!read_str(*inputs, "cell", &in.cell_name) ||
      !read_num(*inputs, "family", &family) ||
      !read_num(*inputs, "inputs", &n_inputs) ||
      !read_num(*inputs, "drive", &in.drive) ||
      !read_size(*inputs, "arc_index", &in.arc_index) ||
      !read_str(*inputs, "arc_label", &in.arc_label) ||
      !read_size(*inputs, "load_idx", &in.load_idx) ||
      !read_size(*inputs, "slew_idx", &in.slew_idx) ||
      !read_num(*inputs, "slew_ns", &in.slew_ns) ||
      !read_num(*inputs, "load_pf", &in.load_pf) ||
      !read_size(*inputs, "mc_samples", &in.mc_samples) ||
      !read_bool(*inputs, "use_lhs", &in.use_lhs) ||
      !read_u64(*inputs, "seed_base", &in.seed_base) ||
      !read_fit(*inputs, "fit", &in.fit) ||
      !read_corner(*inputs, "corner", &in.corner)) {
    return std::nullopt;
  }
  if (family < static_cast<double>(static_cast<int>(CellFamily::kInv)) ||
      family > static_cast<double>(
                   static_cast<int>(CellFamily::kHalfAdder))) {
    return std::nullopt;
  }
  in.family = static_cast<int>(family);
  in.inputs = static_cast<int>(n_inputs);
  return in;
}

namespace {

// The rebuilt execution context of a cached entry: the cell with its
// arc resolved, and options whose grid puts the recorded condition at
// the recorded indices (the entry's seeds depend on the indices; the
// padding slots are never read).
struct RebuiltEntry {
  Cell cell;
  std::size_t arc_index = 0;
  CharacterizeOptions options;
};

std::optional<RebuiltEntry> rebuild_inputs(const CachedEntryInputs& inputs) {
  RebuiltEntry out;
  out.cell = build_cell(static_cast<CellFamily>(inputs.family),
                        inputs.inputs, inputs.drive);
  if (out.cell.name != inputs.cell_name) return std::nullopt;
  bool found = false;
  if (inputs.arc_index < out.cell.arcs.size() &&
      out.cell.arcs[inputs.arc_index].label() == inputs.arc_label) {
    out.arc_index = inputs.arc_index;
    found = true;
  } else {
    for (std::size_t a = 0; a < out.cell.arcs.size(); ++a) {
      if (out.cell.arcs[a].label() == inputs.arc_label) {
        out.arc_index = a;
        found = true;
        break;
      }
    }
  }
  if (!found) return std::nullopt;

  out.options.grid.slews_ns.assign(inputs.slew_idx + 1, inputs.slew_ns);
  out.options.grid.loads_pf.assign(inputs.load_idx + 1, inputs.load_pf);
  out.options.mc_samples = inputs.mc_samples;
  out.options.use_lhs = inputs.use_lhs;
  out.options.seed_base = inputs.seed_base;
  out.options.fit = inputs.fit;
  return out;
}

}  // namespace

std::optional<ConditionCharacterization> recompute_cached_entry(
    const CachedEntryInputs& inputs) {
  const std::optional<RebuiltEntry> rebuilt = rebuild_inputs(inputs);
  if (!rebuilt.has_value()) return std::nullopt;
  Characterizer characterizer(inputs.corner, rebuilt->options);
  return characterizer.characterize_entry(
      rebuilt->cell, rebuilt->cell.arcs[rebuilt->arc_index],
      inputs.arc_label, inputs.load_idx, inputs.slew_idx);
}

const char* to_string(CacheVerifyOutcome outcome) {
  switch (outcome) {
    case CacheVerifyOutcome::kOk: return "ok";
    case CacheVerifyOutcome::kMismatch: return "mismatch";
    case CacheVerifyOutcome::kUndecodable: return "undecodable";
    case CacheVerifyOutcome::kUnrebuildable: return "unrebuildable";
  }
  return "unknown";
}

CacheVerifyOutcome verify_cached_entry(const obs::JsonValue& doc) {
  const std::optional<CachedEntryInputs> inputs = decode_cached_inputs(doc);
  const JsonValue* stored =
      doc.is_object() ? doc.find("result") : nullptr;
  if (!inputs.has_value() || stored == nullptr || !stored->is_object()) {
    return CacheVerifyOutcome::kUndecodable;
  }
  const std::optional<RebuiltEntry> rebuilt = rebuild_inputs(*inputs);
  if (!rebuilt.has_value()) return CacheVerifyOutcome::kUnrebuildable;

  const TimingArc& arc = rebuilt->cell.arcs[rebuilt->arc_index];
  Characterizer characterizer(inputs->corner, rebuilt->options);
  const ConditionCharacterization cc = characterizer.characterize_entry(
      rebuilt->cell, arc, inputs->arc_label, inputs->load_idx,
      inputs->slew_idx);
  if (!cc.status.is_ok()) return CacheVerifyOutcome::kMismatch;

  const JsonValue redone = encode_cached_entry(
      inputs->corner, rebuilt->options, rebuilt->cell,
      inputs->arc_label, inputs->load_idx, inputs->slew_idx, cc, nullptr);
  const JsonValue* redone_result = redone.find("result");
  const obs::JsonWriteOptions full{17};
  return obs::json_write(*stored, full) ==
                 obs::json_write(*redone_result, full)
             ? CacheVerifyOutcome::kOk
             : CacheVerifyOutcome::kMismatch;
}

}  // namespace lvf2::cells
