#include "cells/cell_types.h"

#include <stdexcept>

#include "stats/rng.h"

namespace lvf2::cells {

std::string to_string(CellFamily family) {
  switch (family) {
    case CellFamily::kInv: return "INV";
    case CellFamily::kBuf: return "BUFF";
    case CellFamily::kNand: return "NAND";
    case CellFamily::kNor: return "NOR";
    case CellFamily::kAnd: return "AND";
    case CellFamily::kOr: return "OR";
    case CellFamily::kXor: return "XOR";
    case CellFamily::kXnor: return "XNOR";
    case CellFamily::kMux: return "MUX";
    case CellFamily::kFullAdder: return "FA";
    case CellFamily::kHalfAdder: return "HA";
  }
  return "?";
}

std::string TimingArc::label() const {
  return input_pin + "->" + output_pin + (rise_output ? " (rise)" : " (fall)");
}

std::string Cell::type_name() const {
  switch (family) {
    case CellFamily::kInv:
    case CellFamily::kBuf:
    case CellFamily::kFullAdder:
    case CellFamily::kHalfAdder:
      return to_string(family);
    default:
      return to_string(family) + std::to_string(inputs);
  }
}

std::string input_pin_name(CellFamily family, int index) {
  if (family == CellFamily::kMux) {
    // Data pins D0..D(n-1); selection handled as extra pins by caller.
    return "D" + std::to_string(index);
  }
  static const char* kPins[] = {"A", "B", "C", "D", "E", "F"};
  if (index < 0 || index >= 6) throw std::out_of_range("input pin index");
  return kPins[index];
}

namespace {

// Per-family electrical/personality base parameters.
struct FamilyTraits {
  int nmos_stack = 1;        ///< series NMOS in the worst fall path
  int pmos_stack = 1;        ///< series PMOS in the worst rise path
  double drive_scale = 1.0;  ///< relative device sizing
  double internal_cap = 0.0012;
  double cap_per_input = 0.0004;
  double gain_base = 1.0;    ///< mechanism-B gain scale
  double offset_base = 0.0;  ///< regime threshold shift
};

FamilyTraits family_traits(CellFamily family, int inputs) {
  FamilyTraits t;
  switch (family) {
    case CellFamily::kInv:
      t.gain_base = 0.9;
      break;
    case CellFamily::kBuf:
      // Two stages; the first stage's smoothing lowers the effective
      // mixture separation.
      t.internal_cap = 0.0022;
      t.gain_base = 0.65;
      t.offset_base = -0.2;
      break;
    case CellFamily::kNand:
      t.nmos_stack = inputs;
      t.gain_base = 1.15;
      break;
    case CellFamily::kNor:
      t.pmos_stack = inputs;
      t.gain_base = 1.1;
      t.offset_base = 0.1;
      break;
    case CellFamily::kAnd:
      t.nmos_stack = inputs;
      t.internal_cap = 0.0024;
      t.gain_base = 0.95;
      t.offset_base = -0.15;
      break;
    case CellFamily::kOr:
      t.pmos_stack = inputs;
      t.internal_cap = 0.0024;
      t.gain_base = 0.9;
      t.offset_base = -0.1;
      break;
    case CellFamily::kXor:
      t.nmos_stack = 2;
      t.pmos_stack = 2;
      t.drive_scale = 0.85;
      t.internal_cap = 0.0028 + 0.0007 * inputs;
      t.gain_base = 1.35;
      t.offset_base = 0.15;
      break;
    case CellFamily::kXnor:
      t.nmos_stack = 2;
      t.pmos_stack = 2;
      t.drive_scale = 0.85;
      t.internal_cap = 0.0030 + 0.0007 * inputs;
      t.gain_base = 1.3;
      t.offset_base = 0.2;
      break;
    case CellFamily::kMux:
      t.nmos_stack = 2;
      t.pmos_stack = 2;
      t.drive_scale = 0.9;
      t.internal_cap = 0.0024 + 0.0009 * inputs;
      t.gain_base = 1.2;
      break;
    case CellFamily::kFullAdder:
      t.nmos_stack = 3;
      t.pmos_stack = 3;
      t.internal_cap = 0.0042;
      t.gain_base = 1.25;
      t.offset_base = 0.1;
      break;
    case CellFamily::kHalfAdder:
      t.nmos_stack = 2;
      t.pmos_stack = 2;
      t.internal_cap = 0.0034;
      t.gain_base = 1.2;
      break;
  }
  return t;
}

// Deterministic per-arc personality in [0,1): keeps the library's
// shape diversity reproducible across runs.
double personality(const std::string& key, std::uint64_t salt) {
  const std::uint64_t h =
      stats::combine_seed(stats::hash_name(key), salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

spice::StageElectrical make_stage(const FamilyTraits& traits, double drive,
                                  bool rise_output,
                                  const std::string& arc_key) {
  spice::StageElectrical stage;
  stage.pull.is_nmos = !rise_output;  // rising output pulls through PMOS
  stage.pull.stack = rise_output ? traits.pmos_stack : traits.nmos_stack;
  stage.pull.parallel = 1;
  stage.pull.drive = drive * traits.drive_scale;
  stage.internal_cap_pf = traits.internal_cap * (0.8 + 0.4 * drive);
  stage.input_cap_pf = 0.0018 * drive * traits.drive_scale;

  const double u1 = personality(arc_key, 0xA1);
  const double u2 = personality(arc_key, 0xB2);
  const double u3 = personality(arc_key, 0xC3);
  stage.mechanism_gain = traits.gain_base * (0.45 + 1.2 * u1);
  stage.mechanism_offset = traits.offset_base + 1.6 * (u2 - 0.5);
  stage.mechanism_gain_transition =
      stage.mechanism_gain * (1.1 + 0.8 * u3);
  stage.mechanism_width = 1.2 + 0.5 * personality(arc_key, 0xD4);
  return stage;
}

}  // namespace

Cell build_cell(CellFamily family, int inputs, double drive) {
  if (inputs < 1 || inputs > 4) {
    throw std::invalid_argument("build_cell: inputs must be in [1,4]");
  }
  Cell cell;
  cell.family = family;
  cell.inputs = inputs;
  cell.drive = drive;
  const std::string strength =
      (drive == 1.0) ? "X1" : (drive == 2.0) ? "X2" : (drive == 4.0) ? "X4"
          : "X" + std::to_string(drive);
  Cell tmp;
  tmp.family = family;
  tmp.inputs = inputs;
  cell.name = tmp.type_name() + "_" + strength;

  const FamilyTraits traits = family_traits(family, inputs);

  std::vector<std::string> outputs = {"Y"};
  if (family == CellFamily::kFullAdder || family == CellFamily::kHalfAdder) {
    outputs = {"S", "CO"};
  }
  std::vector<std::string> pins;
  if (family == CellFamily::kFullAdder) {
    pins = {"A", "B", "CI"};
  } else if (family == CellFamily::kMux) {
    for (int i = 0; i < inputs; ++i) pins.push_back(input_pin_name(family, i));
    pins.push_back("S0");
    if (inputs > 2) pins.push_back("S1");
  } else {
    for (int i = 0; i < inputs; ++i) pins.push_back(input_pin_name(family, i));
  }

  for (const std::string& out : outputs) {
    for (const std::string& pin : pins) {
      for (bool rise : {true, false}) {
        TimingArc arc;
        arc.input_pin = pin;
        arc.output_pin = out;
        arc.rise_output = rise;
        const std::string key = cell.name + ":" + pin + ":" + out +
                                (rise ? ":R" : ":F");
        arc.stage = make_stage(traits, drive, rise, key);
        cell.arcs.push_back(std::move(arc));
      }
    }
  }
  return cell;
}

}  // namespace lvf2::cells
