#include "cells/characterize.h"

#include <cmath>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cache/cache.h"
#include "cells/characterize_cache.h"
#include "core/cancel.h"
#include "core/metrics.h"
#include "exec/pool.h"
#include "obs/obs.h"
#include "robust/faults.h"
#include "simd/simd.h"
#include "stats/descriptive.h"
#include "stats/rng.h"

namespace lvf2::cells {

namespace {

// Non-convergence accounting of one LVF^2 fit, with full table-entry
// context. The em.* counters are incremented inside the fit itself;
// this layer owns the per-entry warn log and the characterization-
// scoped counter.
void audit_fit_report(const core::EmReport& report, const std::string& cell,
                      const std::string& arc, std::size_t load_idx,
                      std::size_t slew_idx, const char* which) {
  if (report.converged) return;
  static obs::Counter& nonconverged =
      obs::counter("characterize.em_nonconverged");
  nonconverged.add(1);
  obs::log_warn("em.nonconverged",
                {{"cell", cell},
                 {"arc", arc},
                 {"load_idx", load_idx},
                 {"slew_idx", slew_idx},
                 {"fit", which},
                 {"iterations", report.iterations},
                 {"collapsed", report.collapsed}});
}

// LVF moment fit with a degradation fallback: non-finite samples are
// dropped first (one NaN must not poison the whole moment triple),
// and when the skew-normal moment fit rejects what remains (constant
// / near-constant data), the entry still gets a usable point-mass
// moment triple at the sample mean instead of an all-zero placeholder.
stats::SnMoments fit_lvf_moments(std::span<const double> samples) {
  std::size_t bad = 0;
  for (const double x : samples) bad += std::isfinite(x) ? 0 : 1;
  std::vector<double> finite;
  std::span<const double> clean = samples;
  if (bad > 0) {
    obs::counter("robust.samples.nonfinite_dropped").add(bad);
    finite.reserve(samples.size() - bad);
    for (const double x : samples) {
      if (std::isfinite(x)) finite.push_back(x);
    }
    clean = finite;
  }
  if (auto lvf = stats::SkewNormal::fit_moments(clean)) {
    return lvf->to_moments();
  }
  obs::counter("robust.characterize.lvf_degenerate").add(1);
  const stats::Moments m = stats::compute_moments(clean);
  return stats::SnMoments{m.count > 0 ? m.mean : 0.0, 0.0, 0.0};
}

// QoR attribution of one table entry for the run manifest: the
// delay samples are re-assessed against all four models (the extra
// fits are the price of attribution, and only paid when
// LVF2_MANIFEST armed a manifest). Returned instead of recorded
// directly so the result cache can store the row alongside the entry
// and replay it bitwise on a warm run.
obs::ArcQor manifest_entry_qor(const std::string& cell,
                               const std::string& arc, std::size_t load_idx,
                               std::size_t slew_idx,
                               std::span<const double> delay_samples,
                               const core::FitOptions& fit,
                               const core::EmReport& report) {
  const core::ModelEvaluation eval =
      core::evaluate_models(delay_samples, fit);
  obs::ArcQor row = core::to_arc_qor(eval);
  row.table = "characterize";
  row.cell = cell;
  row.arc = arc;
  row.metric = "delay";
  row.load_idx = static_cast<int>(load_idx);
  row.slew_idx = static_cast<int>(slew_idx);
  row.em_iterations = report.iterations;
  row.em_log_likelihood = report.log_likelihood;
  row.em_converged = report.converged;
  row.degradation = core::to_string(report.degradation);
  return row;
}

void record_manifest_config(const CharacterizeOptions& options) {
  obs::with_manifest([&](obs::ManifestRecorder& m) {
    m.set_config("characterize.grid_rows",
                 static_cast<std::uint64_t>(options.grid.rows()));
    m.set_config("characterize.grid_cols",
                 static_cast<std::uint64_t>(options.grid.cols()));
    m.set_config("characterize.mc_samples",
                 static_cast<std::uint64_t>(options.mc_samples));
    m.set_config("characterize.seed_base", options.seed_base);
    m.set_config("characterize.use_lhs", options.use_lhs);
    m.set_config("characterize.simd_tier",
                 simd::tier_name(simd::active_tier()));
  });
}

// One flattened (cell, arc, load, slew) work item. Flattening across
// every level keeps the pool busy even when a single arc (64 entries)
// or a single cell would not, and gives each entry its own
// independently-seeded task — the determinism mechanism.
struct EntryTask {
  const Cell* cell = nullptr;
  const TimingArc* arc = nullptr;
  ArcCharacterization* table = nullptr;
  std::size_t load_idx = 0;
  std::size_t slew_idx = 0;
  std::size_t entry_idx = 0;  ///< row-major slot in table->entries
};

// Pre-sizes a table so parallel entry tasks can slot-write results.
void init_table(ArcCharacterization& table, const Cell& cell,
                const TimingArc& arc, const SlewLoadGrid& grid) {
  table.cell_name = cell.name;
  table.arc_label = arc.label();
  table.grid = grid;
  table.entries.resize(grid.rows() * grid.cols());
}

void append_entry_tasks(std::vector<EntryTask>& tasks, const Cell& cell,
                        const TimingArc& arc, ArcCharacterization& table) {
  const std::size_t cols = table.grid.cols();
  for (std::size_t li = 0; li < table.grid.rows(); ++li) {
    for (std::size_t si = 0; si < cols; ++si) {
      tasks.push_back(
          EntryTask{&cell, &arc, &table, li, si, li * cols + si});
    }
  }
}

// Fans the flattened entries out across the pool. Results land in
// their row-major slots and every entry derives its own seeds, so
// the tables are byte-identical to a serial run at any thread count.
void run_entry_tasks(const Characterizer& characterizer,
                     const std::vector<EntryTask>& tasks) {
  exec::parallel_for(tasks.size(), 1, [&](std::size_t t) {
    const EntryTask& task = tasks[t];
    task.table->entries[task.entry_idx] = characterizer.characterize_entry(
        *task.cell, *task.arc, task.table->arc_label, task.load_idx,
        task.slew_idx);
  });
}

}  // namespace

SlewLoadGrid SlewLoadGrid::paper_grid() {
  SlewLoadGrid g;
  g.slews_ns = {0.0023, 0.0091, 0.0228, 0.0502,
                0.1005, 0.2145, 0.4535, 0.8715};
  g.loads_pf = {0.00015, 0.00722, 0.02136, 0.04965,
                0.10623, 0.21938, 0.44569, 0.89830};
  return g;
}

SlewLoadGrid SlewLoadGrid::reduced(std::size_t stride) {
  if (stride == 0) throw std::invalid_argument("reduced: stride must be > 0");
  const SlewLoadGrid full = paper_grid();
  SlewLoadGrid g;
  for (std::size_t i = 0; i < full.slews_ns.size(); i += stride) {
    g.slews_ns.push_back(full.slews_ns[i]);
  }
  for (std::size_t i = 0; i < full.loads_pf.size(); i += stride) {
    g.loads_pf.push_back(full.loads_pf[i]);
  }
  return g;
}

std::uint64_t Characterizer::condition_seed(const std::string& cell_name,
                                            const std::string& arc_label,
                                            std::size_t load_idx,
                                            std::size_t slew_idx) const {
  std::uint64_t seed =
      stats::combine_seed(options_.seed_base,
                          stats::hash_name(cell_name + "/" + arc_label));
  seed = stats::combine_seed(seed, load_idx * 131 + slew_idx);
  return seed;
}

spice::McResult Characterizer::golden_samples(const Cell& cell,
                                              const TimingArc& arc,
                                              std::size_t load_idx,
                                              std::size_t slew_idx) const {
  spice::ArcCondition cond{options_.grid.slews_ns.at(slew_idx),
                           options_.grid.loads_pf.at(load_idx)};
  spice::McConfig mc;
  mc.samples = options_.mc_samples;
  mc.use_lhs = options_.use_lhs;
  mc.seed = condition_seed(cell.name, arc.label(), load_idx, slew_idx);
  return spice::run_monte_carlo(arc.stage, cond, corner_, mc);
}

ConditionCharacterization Characterizer::characterize_entry(
    const Cell& cell, const TimingArc& arc, const std::string& arc_label,
    std::size_t load_idx, std::size_t slew_idx) const {
  obs::TraceSpan entry_span("characterize.entry", [&] {
    return obs::ArgsBuilder()
        .add("cell", cell.name)
        .add("arc", arc_label)
        .add("load_idx", load_idx)
        .add("slew_idx", slew_idx)
        .str();
  });
  static obs::Counter& entries_counter = obs::counter("characterize.entries");
  entries_counter.add(1);

  // Cache fast path: a usable hit skips the Monte Carlo and every fit.
  // Computation-fault injection makes entries impure (corruption is
  // call-index based), so the cache stands down while any samples/em/
  // liberty/ssta fault is armed; pure I/O faults (socket.*,
  // cache.read_io) leave results correct and keep the cache serving —
  // the lvf2d soak depends on a warm cache under exactly those.
  const bool cache_active =
      cache::enabled() && !robust::pipeline_faults_armed();
  std::uint64_t cache_key = 0;
  if (cache_active) {
    cache_key = entry_cache_key(corner_, options_, cell, arc, arc_label,
                                load_idx, slew_idx);
    bool decode_failed = false;
    if (auto doc = cache::ResultCache::instance().lookup(cache_key)) {
      if (auto decoded = decode_cached_entry(*doc)) {
        // Under a manifest, a hit must also replay the entry's QoR
        // row; a cached entry without one (populated manifest-off)
        // degrades to a miss so the row gets computed and stored.
        const bool need_qor = obs::manifest_enabled();
        if (!need_qor || decoded->qor.has_value()) {
          static obs::Counter& hits = obs::counter("cache.hit");
          hits.add(1);
          if (need_qor) {
            obs::ManifestRecorder::instance().add_arc(
                std::move(*decoded->qor));
          }
          return std::move(decoded->entry);
        }
      } else {
        decode_failed = true;
      }
    }
    static obs::Counter& misses = obs::counter("cache.miss");
    misses.add(1);
    if (decode_failed) {
      // Stored bytes parsed as JSON but not as an entry: evict and
      // recompute (the robust.* name keeps all degradations greppable).
      obs::counter("robust.downgrade.cache_decode").add(1);
      cache::ResultCache::instance().erase(cache_key);
    }
  }

  ConditionCharacterization cc;
  std::optional<obs::ArcQor> qor_row;
  cc.condition = spice::ArcCondition{options_.grid.slews_ns[slew_idx],
                                     options_.grid.loads_pf[load_idx]};
  try {
    const spice::StageTimes nominal =
        spice::nominal_stage_times(arc.stage, cc.condition, corner_);
    cc.nominal_delay_ns = nominal.delay_ns;
    cc.nominal_transition_ns = nominal.transition_ns;

    spice::McResult mc = golden_samples(cell, arc, load_idx, slew_idx);
    robust::corrupt_samples(mc.delay_ns);
    robust::corrupt_samples(mc.transition_ns);
    core::FitOptions fit = options_.fit;
    fit.seed = stats::combine_seed(fit.seed, load_idx * 17 + slew_idx);

    cc.lvf_delay = fit_lvf_moments(mc.delay_ns);
    cc.lvf_transition = fit_lvf_moments(mc.transition_ns);
    if (auto m = core::Lvf2Model::fit(mc.delay_ns, fit,
                                      &cc.lvf2_delay_report)) {
      cc.lvf2_delay = m->parameters();
    }
    audit_fit_report(cc.lvf2_delay_report, cell.name, arc_label, load_idx,
                     slew_idx, "delay");
    if (auto m = core::Lvf2Model::fit(mc.transition_ns, fit,
                                      &cc.lvf2_transition_report)) {
      cc.lvf2_transition = m->parameters();
    }
    audit_fit_report(cc.lvf2_transition_report, cell.name, arc_label,
                     load_idx, slew_idx, "transition");
    if (obs::manifest_enabled()) {
      qor_row = manifest_entry_qor(cell.name, arc_label, load_idx, slew_idx,
                                   mc.delay_ns, fit, cc.lvf2_delay_report);
      obs::ManifestRecorder::instance().add_arc(*qor_row);
    }
  } catch (const core::CancelledError&) {
    // A deadline expiry is not an entry failure: the serving layer
    // owns the shed decision (degrade to a cheaper rung), so the
    // cancellation propagates instead of degrading in place here.
    throw;
  } catch (const std::exception& e) {
    // A failed entry degrades to its nominal values; the library
    // table stays complete and the Status records the cause.
    obs::counter("robust.characterize.entry_failed").add(1);
    obs::log_warn("characterize.entry_failed",
                  {{"cell", cell.name},
                   {"arc", arc_label},
                   {"load_idx", load_idx},
                   {"slew_idx", slew_idx},
                   {"error", e.what()}});
    cc.status = core::status_from_exception(e);
    obs::with_manifest([&](obs::ManifestRecorder& m) {
      obs::ArcQor row;
      row.table = "characterize";
      row.cell = cell.name;
      row.arc = arc_label;
      row.metric = "delay";
      row.load_idx = static_cast<int>(load_idx);
      row.slew_idx = static_cast<int>(slew_idx);
      row.status = cc.status.to_string();
      m.add_arc(std::move(row));
    });
  }
  // Only clean entries are stored; failed ones recompute every run so
  // a transient failure cannot become a persistent wrong answer.
  if (cache_active && cc.status.is_ok()) {
    cache::ResultCache::instance().store(
        cache_key,
        encode_cached_entry(corner_, options_, cell, arc_label,
                            load_idx, slew_idx, cc,
                            qor_row.has_value() ? &*qor_row : nullptr));
  }
  return cc;
}

ArcCharacterization Characterizer::characterize_arc(
    const Cell& cell, const TimingArc& arc) const {
  obs::TraceSpan arc_span("characterize.arc", [&] {
    return obs::ArgsBuilder()
        .add("cell", cell.name)
        .add("arc", arc.label())
        .str();
  });
  record_manifest_config(options_);

  ArcCharacterization out;
  init_table(out, cell, arc, options_.grid);
  std::vector<EntryTask> tasks;
  tasks.reserve(out.entries.size());
  append_entry_tasks(tasks, cell, arc, out);
  run_entry_tasks(*this, tasks);
  return out;
}

CellCharacterization Characterizer::characterize_cell(const Cell& cell) const {
  obs::TraceSpan span("characterize.cell", [&] {
    return obs::ArgsBuilder().add("cell", cell.name).str();
  });
  record_manifest_config(options_);

  CellCharacterization out;
  out.cell_name = cell.name;
  out.arcs.resize(cell.arcs.size());
  std::vector<EntryTask> tasks;
  tasks.reserve(cell.arcs.size() * options_.grid.rows() *
                options_.grid.cols());
  for (std::size_t a = 0; a < cell.arcs.size(); ++a) {
    init_table(out.arcs[a], cell, cell.arcs[a], options_.grid);
    append_entry_tasks(tasks, cell, cell.arcs[a], out.arcs[a]);
  }
  run_entry_tasks(*this, tasks);
  return out;
}

LibraryCharacterization Characterizer::characterize_library(
    const StandardCellLibrary& library) const {
  obs::TraceSpan span("characterize.library", [&] {
    return obs::ArgsBuilder().add("cells", library.size()).str();
  });
  record_manifest_config(options_);

  LibraryCharacterization out;
  out.cells.resize(library.size());
  std::vector<EntryTask> tasks;
  const auto& cells = library.cells();
  for (std::size_t c = 0; c < cells.size(); ++c) {
    out.cells[c].cell_name = cells[c].name;
    out.cells[c].arcs.resize(cells[c].arcs.size());
    for (std::size_t a = 0; a < cells[c].arcs.size(); ++a) {
      init_table(out.cells[c].arcs[a], cells[c], cells[c].arcs[a],
                 options_.grid);
      append_entry_tasks(tasks, cells[c], cells[c].arcs[a],
                         out.cells[c].arcs[a]);
    }
  }
  run_entry_tasks(*this, tasks);
  return out;
}

}  // namespace lvf2::cells
