#pragma once
// The 25 combinational standard-cell types of the paper's benchmark
// (Table 2): INV, BUFF, NAND2-4, AND2-4, NOR2-4, OR2-4, XOR2-4,
// XNOR2-4, MUX2-4, FA, HA — each with multiple drive strengths and
// per-input-pin rise/fall timing arcs. Every arc carries a resolved
// electrical template (spice::StageElectrical) plus a deterministic
// "personality" (mechanism gain/offset derived from the arc name
// hash) so the library exhibits the same diversity of non-Gaussian
// shapes the paper reports.

#include <cstdint>
#include <string>
#include <vector>

#include "spice/cellsim.h"

namespace lvf2::cells {

/// Logical family of a cell type.
enum class CellFamily {
  kInv,
  kBuf,
  kNand,
  kNor,
  kAnd,
  kOr,
  kXor,
  kXnor,
  kMux,
  kFullAdder,
  kHalfAdder,
};

/// Family display name ("INV", "NAND", ...).
std::string to_string(CellFamily family);

/// One timing arc: input pin -> output pin, one output direction.
struct TimingArc {
  std::string input_pin;
  std::string output_pin = "Y";
  bool rise_output = true;  ///< output rises (PMOS pull) vs falls
  spice::StageElectrical stage;

  /// "A->Y (rise)" style label.
  std::string label() const;
};

/// A concrete standard cell (type + drive strength) with its arcs.
struct Cell {
  std::string name;    ///< e.g. "NAND2_X2"
  CellFamily family = CellFamily::kInv;
  int inputs = 1;      ///< number of data inputs
  double drive = 1.0;  ///< drive strength multiple
  std::vector<TimingArc> arcs;

  /// Cell-type display name as used in Table 2 ("NAND2", "FA", ...).
  std::string type_name() const;
};

/// Builds one cell of the given family / input count / drive
/// strength, resolving every timing arc's electrical template.
Cell build_cell(CellFamily family, int inputs, double drive);

/// Input-pin name for index i ("A", "B", "C", "D", or "S0"/"D0" style
/// for muxes).
std::string input_pin_name(CellFamily family, int index);

}  // namespace lvf2::cells
