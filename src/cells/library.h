#pragma once
// The paper's standard-cell benchmark library: 25 combinational cell
// types (Table 2), each instantiated at one or more drive strengths.

#include <optional>
#include <string>
#include <vector>

#include "cells/cell_types.h"

namespace lvf2::cells {

/// A collection of cells with name lookup.
class StandardCellLibrary {
 public:
  StandardCellLibrary() = default;
  explicit StandardCellLibrary(std::vector<Cell> cells);

  const std::vector<Cell>& cells() const { return cells_; }
  std::size_t size() const { return cells_.size(); }

  /// Finds a cell by exact name ("NAND2_X1"); nullptr if absent.
  const Cell* find(const std::string& name) const;

  /// All distinct cell-type names in library order ("INV", "BUFF", ...).
  std::vector<std::string> type_names() const;

  /// All cells of one type name.
  std::vector<const Cell*> cells_of_type(const std::string& type_name) const;

  /// Total timing arcs across the library.
  std::size_t total_arcs() const;

 private:
  std::vector<Cell> cells_;
};

/// Options for building the benchmark library.
struct LibraryOptions {
  /// Drive strengths instantiated per cell type.
  std::vector<double> drives = {1.0, 2.0};
};

/// Builds the 25-type benchmark library of paper Table 2:
/// INV, BUFF, NAND2-4, AND2-4, NOR2-4, OR2-4, XOR2-4, XNOR2-4,
/// MUX2-4, FA, HA.
StandardCellLibrary build_paper_library(const LibraryOptions& options = {});

}  // namespace lvf2::cells
