#include "cache/cache.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>
#define LVF2_CACHE_HAS_FLOCK 1
#endif

#include "obs/obs.h"
#include "robust/faults.h"

namespace lvf2::cache {

namespace detail {
std::atomic<bool> g_cache_enabled{false};
}  // namespace detail

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

// Arms the singleton at static-initialization time so a cache covers
// main() end to end, mirroring LVF2_MANIFEST / LVF2_TRACE.
struct CacheEnvInit {
  CacheEnvInit() { arm_from_env(); }
} g_cache_env_init;

#if LVF2_CACHE_HAS_FLOCK

// One attempt at reading `path` whole. Returns false on a hard I/O
// failure; real EINTR and injected transient cache.read_io faults are
// absorbed in the read loop (each absorption counts cache.io_retry).
// An injected fault is "hard" on one draw in four, exercising the
// caller's backoff path too.
bool read_file_once(const std::string& path, std::string& out,
                    bool& absent) {
  out.clear();
  absent = false;
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    absent = (errno == ENOENT);
    return absent;  // missing shard is a clean empty read, not an error
  }
  char buf[1 << 16];
  for (;;) {
    if (robust::fire(robust::Fault::kCacheReadIo)) {
      const bool hard =
          robust::FaultInjector::instance().draw(robust::Fault::kCacheReadIo) %
              4 ==
          0;
      if (hard) {
        ::close(fd);
        return false;
      }
      obs::counter("cache.io_retry").add(1);
      continue;  // transient: behave like an absorbed EINTR
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        obs::counter("cache.io_retry").add(1);
        continue;
      }
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

// Reads a shard file with bounded retry + exponential backoff and
// deterministic jitter around transient I/O failures. A persistently
// unreadable shard degrades to an absent one (its entries recompute)
// with a robust.downgrade.cache_io count — the failure is surfaced,
// never silent, and never fatal.
std::string read_file(const std::string& path) {
  constexpr int kAttempts = 4;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    if (attempt > 0) {
      // 1/2/4 ms base with +-25% jitter derived from (path, attempt):
      // deterministic per call site, yet de-synchronized across the
      // shards so replica fleets do not retry in lockstep.
      const std::uint64_t h =
          std::hash<std::string>()(path) * 0x9e3779b97f4a7c15ull +
          static_cast<std::uint64_t>(attempt);
      const double jitter = 0.75 + 0.5 * static_cast<double>(h % 1024) / 1024.0;
      const double base_ms = static_cast<double>(1 << (attempt - 1));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(base_ms * jitter));
      obs::counter("cache.io_retry").add(1);
    }
    std::string out;
    bool absent = false;
    if (read_file_once(path, out, absent)) return out;
  }
  obs::counter("robust.downgrade.cache_io").add(1);
  obs::log_warn("cache.shard_io_failed", {{"path", path}});
  return {};
}

#else  // !LVF2_CACHE_HAS_FLOCK

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

#endif  // LVF2_CACHE_HAS_FLOCK

// A damaged cache file or entry degrades to recompute; both counters
// exist so the robustness layer and the cache stats agree on it.
void count_corrupt(std::uint64_t n = 1) {
  obs::counter("robust.downgrade.cache_corrupt").add(n);
  obs::counter("cache.evict").add(n);
}

// Renders the manifest "cache" section from the live counters + the
// armed singleton's load state. Registered as a manifest section
// provider while the cache is armed.
std::string render_manifest_section() {
  ResultCache& c = ResultCache::instance();
  std::string out = "{\"dir\":";
  obs::json_append_string(out, c.dir());
  out += ",\"mode\":";
  obs::json_append_string(out, to_string(c.mode()));
  out += ",\"hit\":" + std::to_string(obs::counter("cache.hit").value());
  out += ",\"miss\":" + std::to_string(obs::counter("cache.miss").value());
  out += ",\"store\":" + std::to_string(obs::counter("cache.store").value());
  out += ",\"evict\":" + std::to_string(obs::counter("cache.evict").value());
  out += ",\"loaded\":" + std::to_string(c.loaded_entries());
  out += ",\"entries\":" + std::to_string(c.size());
  out += '}';
  return out;
}

}  // namespace

void KeyHasher::feed_bytes(const void* data, std::size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash_ ^= bytes[i];
    hash_ *= kFnvPrime;
  }
}

void KeyHasher::feed(std::string_view s) {
  feed(static_cast<std::uint64_t>(s.size()));
  feed_bytes(s.data(), s.size());
}

void KeyHasher::feed(std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  feed_bytes(bytes, sizeof(bytes));
}

void KeyHasher::feed(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  feed(bits);
}

void KeyHasher::feed(bool v) { feed(static_cast<std::uint64_t>(v ? 1 : 2)); }

Mode parse_mode(const char* text) {
  if (text == nullptr || text[0] == '\0') return Mode::kReadWrite;
  const std::string_view s(text);
  if (s == "rw" || s == "readwrite") return Mode::kReadWrite;
  if (s == "readonly" || s == "ro") return Mode::kReadOnly;
  if (s == "refresh") return Mode::kRefresh;
  obs::log_warn("cache.bad_mode", {{"value", std::string(s)}});
  return Mode::kReadWrite;
}

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kReadWrite: return "rw";
    case Mode::kReadOnly: return "readonly";
    case Mode::kRefresh: return "refresh";
  }
  return "off";
}

ResultCache::~ResultCache() {
  // Offline instances flush themselves; the armed singleton is leaked
  // and flushed by its atexit hook instead.
  flush();
}

ResultCache& ResultCache::instance() {
  static ResultCache* cache = new ResultCache();  // leaked
  return *cache;
}

std::string ResultCache::shard_file_name(std::size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%02zu.json", shard);
  return buf;
}

std::string ResultCache::format_key(std::uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

std::optional<std::uint64_t> ResultCache::parse_key(std::string_view hex) {
  if (hex.size() != 16) return std::nullopt;
  std::uint64_t key = 0;
  for (char c : hex) {
    key <<= 4;
    if (c >= '0' && c <= '9') {
      key |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      key |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return key;
}

void ResultCache::arm(const std::string& dir, Mode mode) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (armed_) return;
    armed_ = true;
    mode_ = mode;
    dir_ = dir;
#if LVF2_CACHE_HAS_FLOCK
    ::mkdir(dir.c_str(), 0755);  // single level; EEXIST is fine
#endif
    load_locked();
  }
  if (this == &instance()) {
    detail::g_cache_enabled.store(true, std::memory_order_relaxed);
    obs::ManifestRecorder::instance().set_section_provider(
        "cache", render_manifest_section);
  }
  obs::log_info("cache.armed", {{"dir", dir},
                                {"mode", to_string(mode)},
                                {"loaded", loaded_entries()}});
}

void ResultCache::disarm() {
  flush();
  if (this == &instance()) {
    detail::g_cache_enabled.store(false, std::memory_order_relaxed);
    obs::ManifestRecorder::instance().clear_section_provider("cache");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
  mode_ = Mode::kOff;
  dir_.clear();
  entries_.clear();
  erased_.clear();
  std::fill(std::begin(dirty_), std::end(dirty_), false);
  loaded_ = 0;
  load_failures_ = 0;
}

bool ResultCache::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return armed_;
}

Mode ResultCache::mode() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mode_;
}

std::string ResultCache::dir() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dir_;
}

std::optional<obs::JsonValue> ResultCache::lookup(std::uint64_t key) {
  std::string serialized;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_ || mode_ == Mode::kRefresh) return std::nullopt;
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    serialized = it->second;
  }
  std::string error;
  std::optional<obs::JsonValue> doc = obs::json_parse(serialized, &error);
  if (!doc.has_value()) {
    // The stored bytes rotted (should be unreachable — entries are
    // validated at load); evict so the next run recomputes cleanly.
    // erase() counts the evict, so only the downgrade is counted here.
    obs::counter("robust.downgrade.cache_corrupt").add(1);
    erase(key);
    obs::log_warn("cache.entry_corrupt",
                  {{"key", format_key(key)}, {"error", error}});
    return std::nullopt;
  }
  return doc;
}

void ResultCache::store(std::uint64_t key, const obs::JsonValue& value) {
  // Full-precision serialization: cached doubles must round-trip
  // bitwise so a warm run renders byte-identical manifests.
  const std::string serialized =
      obs::json_write(value, obs::JsonWriteOptions{17});
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_ || mode_ == Mode::kReadOnly) return;
    entries_[key] = serialized;
    erased_.erase(key);
    dirty_[shard_of(key)] = true;
  }
  obs::counter("cache.store").add(1);
}

bool ResultCache::erase(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool existed = entries_.erase(key) > 0;
  if (existed) {
    erased_.insert(key);  // suppress the on-disk copy at flush time
    dirty_[shard_of(key)] = true;
    obs::counter("cache.evict").add(1);
  }
  return existed;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t ResultCache::loaded_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return loaded_;
}

std::uint64_t ResultCache::load_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return load_failures_;
}

void ResultCache::for_each_entry(
    const std::function<void(std::uint64_t, const std::string&)>& fn) const {
  // Snapshot under the lock, call back outside it.
  std::vector<std::pair<std::uint64_t, std::string>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.assign(entries_.begin(), entries_.end());
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, value] : snapshot) fn(key, value);
}

void ResultCache::load_locked() {
  for (std::size_t shard = 0; shard < kShardCount; ++shard) {
    load_shard_file(dir_ + "/" + shard_file_name(shard));
  }
  loaded_ = entries_.size();
}

void ResultCache::load_shard_file(const std::string& path) {
  const std::string text = read_file(path);
  if (text.empty()) return;  // absent or empty shard: nothing to load
  std::string error;
  const std::optional<obs::JsonValue> doc = obs::json_parse(text, &error);
  const obs::JsonValue* entries =
      doc.has_value() ? doc->find("entries") : nullptr;
  if (!doc.has_value() || !doc->is_object() || entries == nullptr ||
      !entries->is_object() ||
      doc->number_or("schema_version", 0.0) != kShardSchemaVersion) {
    // A truncated / corrupted / foreign shard file degrades to an
    // empty shard: every entry it held recomputes on the next run.
    ++load_failures_;
    count_corrupt();
    obs::log_warn("cache.shard_corrupt", {{"path", path}, {"error", error}});
    return;
  }
  for (const auto& [hex, value] : entries->object) {
    const std::optional<std::uint64_t> key = parse_key(hex);
    if (!key.has_value() || !value.is_object()) {
      count_corrupt();
      obs::log_warn("cache.entry_corrupt", {{"path", path}, {"key", hex}});
      continue;
    }
    entries_[*key] = obs::json_write(value, obs::JsonWriteOptions{17});
  }
}

bool ResultCache::flush_shard_locked(std::size_t shard) {
  const std::string path = dir_ + "/" + shard_file_name(shard);

#if LVF2_CACHE_HAS_FLOCK
  // Per-shard advisory lock: concurrent populating processes merge
  // their entries instead of clobbering each other.
  const std::string lock_path = path + ".lock";
  int lock_fd = -1;
  do {
    lock_fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
  } while (lock_fd < 0 && errno == EINTR);
  if (lock_fd >= 0) {
    // A signal-interrupted flock must be retried, not abandoned: an
    // unlocked merge would let two writers clobber each other.
    while (::flock(lock_fd, LOCK_EX) != 0) {
      if (errno != EINTR) break;
      obs::counter("cache.io_retry").add(1);
    }
  }
#endif

  // Merge: start from what is on disk now (another process may have
  // flushed since we loaded), overlay our entries (content-addressed
  // values are identical for identical keys, so "ours win" is safe).
  // Keys this process erased are tombstoned and stay deleted instead
  // of being resurrected from the on-disk copy (gc depends on this).
  std::vector<std::pair<std::uint64_t, std::string>> merged;
  {
    ResultCache disk;  // scratch holder for the on-disk shard
    disk.load_shard_file(path);
    for (auto& [key, value] : disk.entries_) {
      if (entries_.find(key) == entries_.end() &&
          erased_.find(key) == erased_.end()) {
        merged.emplace_back(key, std::move(value));
      }
    }
  }
  for (const auto& [key, value] : entries_) {
    if (shard_of(key) == shard) merged.emplace_back(key, value);
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::string out = "{\"schema_version\":";
  out += std::to_string(kShardSchemaVersion);
  out += ",\"entries\":{";
  bool first = true;
  for (const auto& [key, value] : merged) {
    if (shard_of(key) != shard) continue;
    if (!first) out += ',';
    first = false;
    obs::json_append_string(out, format_key(key));
    out += ':';
    out += value;
  }
  out += "}}\n";
  const bool ok = obs::write_file_atomic(path, out);

#if LVF2_CACHE_HAS_FLOCK
  if (lock_fd >= 0) {
    ::flock(lock_fd, LOCK_UN);
    ::close(lock_fd);
  }
#endif
  return ok;
}

void ResultCache::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_) return;
  for (std::size_t shard = 0; shard < kShardCount; ++shard) {
    if (!dirty_[shard]) continue;
    if (flush_shard_locked(shard)) {
      dirty_[shard] = false;
      // The deletions are on disk; the tombstones have done their job.
      std::erase_if(erased_,
                    [shard](std::uint64_t key) { return shard_of(key) == shard; });
    }
  }
}

void arm_from_env() {
  const char* dir = std::getenv("LVF2_CACHE");
  if (dir == nullptr || dir[0] == '\0') return;
  ResultCache& cache = ResultCache::instance();
  if (cache.armed()) return;
  cache.arm(dir, parse_mode(std::getenv("LVF2_CACHE_MODE")));
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit([] { ResultCache::instance().flush(); });
  }
}

}  // namespace lvf2::cache
