#pragma once
// Content-addressed result cache: a persistent, sharded on-disk store
// mapping stable 64-bit input hashes to JSON result documents. The
// characterization pipeline uses it to skip Monte-Carlo + EM entirely
// when nothing upstream of a table entry changed — the enabling step
// for incremental library re-runs (see DESIGN.md decision 17).
//
// The cache is sound because of decision 16: every characterization
// entry derives its RNG seeds from (cell, arc, load_idx, slew_idx)
// alone, so its output is a pure function of the hashed inputs. The
// key must therefore cover *every* input — cell/arc identity and
// electrics, grid condition, Monte-Carlo config, fit options, process
// corner, and a code-version salt bumped when fitting code changes
// (cells::kCharacterizeCacheSalt).
//
// Environment:
//   LVF2_CACHE=<dir>        arms the cache (default: off)
//   LVF2_CACHE_MODE=rw      read + write (default)
//                  readonly hits only, nothing written back
//                  refresh  recompute everything, overwrite stored
// Disabled-path contract: cache::enabled() is one relaxed atomic
// load, the same cost as a disabled trace span (BM_DisabledCacheLookup
// in bench_perf).
//
// Concurrency: in-process lookups/stores are mutex-guarded; across
// processes each shard is merged at flush time under a per-shard
// flock() and written atomically (<file>.tmp + rename), so concurrent
// populating runs union their entries instead of clobbering each
// other (single-writer merge-at-exit).

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "obs/json.h"

namespace lvf2::cache {

/// Incremental FNV-1a 64-bit hasher over typed, length-disciplined
/// fields. Strings are length-prefixed and numbers are fed as their
/// raw 8-byte patterns, so adjacent fields cannot alias ("ab" + "c"
/// hashes differently from "a" + "bc") and every single-field change
/// produces a different key.
class KeyHasher {
 public:
  void feed_bytes(const void* data, std::size_t size);
  void feed(std::string_view s);
  void feed(std::uint64_t v);
  void feed(double v);
  void feed(bool v);
  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
};

/// Cache operating mode (LVF2_CACHE_MODE).
enum class Mode {
  kOff,
  kReadWrite,  ///< "rw": hits served, misses stored (default)
  kReadOnly,   ///< "readonly": hits served, nothing written back
  kRefresh,    ///< "refresh": everything recomputed and overwritten
};

/// Parses an LVF2_CACHE_MODE value; unknown / empty input falls back
/// to kReadWrite. Exposed for tests.
Mode parse_mode(const char* text);
const char* to_string(Mode mode);

namespace detail {
extern std::atomic<bool> g_cache_enabled;
}  // namespace detail

/// True when the cache is armed. Relaxed load: the only cost paid by
/// hook sites when no cache was requested.
inline bool enabled() {
  return detail::g_cache_enabled.load(std::memory_order_relaxed);
}

/// Sharded content-addressed store. Entries live in memory as
/// serialized JSON (full 17-digit precision, so doubles round-trip
/// bitwise); dirty shards are merged back to disk at flush time.
/// Construct directly for offline tooling (lvf2_cache CLI, tests) or
/// use the process singleton armed from the environment.
class ResultCache {
 public:
  ResultCache() = default;
  ~ResultCache();
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The process-wide cache (leaked singleton) behind
  /// Characterizer::characterize_entry.
  static ResultCache& instance();

  static constexpr std::size_t kShardCount = 16;
  static constexpr int kShardSchemaVersion = 1;
  static std::size_t shard_of(std::uint64_t key) { return key >> 60; }
  static std::string shard_file_name(std::size_t shard);
  static std::string format_key(std::uint64_t key);
  static std::optional<std::uint64_t> parse_key(std::string_view hex);

  /// Arms the cache on `dir` (created if missing), loading every
  /// shard file. Corrupted shard files / entries are dropped with a
  /// robust.downgrade.cache_corrupt count — a damaged cache degrades
  /// to recompute, never to a crash or a wrong result.
  void arm(const std::string& dir, Mode mode);
  /// Flushes dirty shards and clears all state; enabled() goes false
  /// (when `this` is the armed singleton).
  void disarm();

  bool armed() const;
  Mode mode() const;
  std::string dir() const;

  /// The stored document for `key`, or nullopt when absent, when the
  /// stored bytes no longer parse (counted + evicted), or in refresh
  /// mode (which recomputes everything). Does not count hits/misses —
  /// the caller decides what a usable hit is (see
  /// cells::characterize_entry, which also requires a decodable
  /// payload and, under a manifest, a stored QoR row).
  std::optional<obs::JsonValue> lookup(std::uint64_t key);

  /// Serializes and stores `value` under `key` (last write wins).
  /// No-op in readonly mode. Counts cache.store.
  void store(std::uint64_t key, const obs::JsonValue& value);

  /// Removes `key`; returns true when it existed. Counts cache.evict.
  /// The deletion is remembered as a tombstone so the flush-time merge
  /// does not resurrect the entry from the on-disk shard.
  bool erase(std::uint64_t key);

  /// Writes every dirty shard back to disk: per-shard flock(), merge
  /// with what another process may have written meanwhile (this
  /// process's entries win, and its erase() tombstones suppress the
  /// on-disk copy), atomic rename.
  void flush();

  std::size_t size() const;
  std::uint64_t loaded_entries() const;
  std::uint64_t load_failures() const;

  /// Iterates all (key, serialized entry) pairs in unspecified order.
  void for_each_entry(
      const std::function<void(std::uint64_t, const std::string&)>& fn) const;

 private:
  void load_locked();
  void load_shard_file(const std::string& path);
  bool flush_shard_locked(std::size_t shard);

  mutable std::mutex mutex_;
  bool armed_ = false;
  Mode mode_ = Mode::kOff;
  std::string dir_;
  std::unordered_map<std::uint64_t, std::string> entries_;
  std::unordered_set<std::uint64_t> erased_;  ///< deletion tombstones
  bool dirty_[kShardCount] = {};
  std::uint64_t loaded_ = 0;
  std::uint64_t load_failures_ = 0;
};

/// Arms the singleton from LVF2_CACHE / LVF2_CACHE_MODE (no-op when
/// unset or already armed). Called from a static initializer in any
/// binary that links the characterization pipeline; safe to call
/// again manually.
void arm_from_env();

}  // namespace lvf2::cache
