#include "yield/importance.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "core/cancel.h"
#include "exec/pool.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/lhs.h"
#include "stats/normal.h"
#include "stats/rng.h"

namespace lvf2::yield {

namespace {

// Deadline-checkpoint block size, matching spice/montecarlo.cpp: at
// most this many more simulations run after a serve deadline expires.
constexpr std::size_t kCheckpointBlock = 256;

constexpr double kInf = std::numeric_limits<double>::infinity();

bool is_shifted(const ShiftVector& shift) {
  for (const double s : shift) {
    if (s != 0.0) return true;
  }
  return false;
}

double norm(const ShiftVector& v) {
  double s = 0.0;
  for (const double x : v) s += x * x;
  return std::sqrt(s);
}

// Accumulated proposal draws of one estimation run, in draw order.
// `z` and `delay` are filled only when the caller needs the raw
// points back (the cross-entropy pilot); estimation proper keeps just
// the scalars.
struct DrawSet {
  std::vector<double> log_weight;
  std::vector<unsigned char> fail;
  std::vector<double> z;      ///< row-major kShiftDims per draw when kept
  std::vector<double> delay;  ///< per-draw delay (ns) when kept
};

// One contiguous shard of a batch: draws its own independently-seeded
// z set, applies the proposal shift, simulates, and writes weights and
// failure flags into [begin, end) of the output slices. Mirrors
// spice::run_monte_carlo's run_shard draw order exactly so a zero
// shift reproduces the plain MC sample set bitwise.
void run_is_shard(const spice::StageElectrical& stage,
                  const spice::ArcCondition& condition,
                  const spice::ProcessCorner& corner, const IsConfig& config,
                  const ShiftVector& shift, double threshold_ns,
                  std::uint64_t shard_seed, std::size_t begin, std::size_t end,
                  bool keep_z, DrawSet& out, std::size_t out_offset) {
  stats::Rng rng(shard_seed);
  const spice::VariationSampler sampler(corner);
  const std::size_t count = end - begin;
  const bool shifted = is_shifted(shift);

  // Raw standard-normal draws: LHS-stratified (per shard, as in
  // spice::McConfig) or plain, in the exact order VariationSampler
  // consumes its rng.
  std::vector<double> z(count * kShiftDims);
  if (config.use_lhs) {
    const stats::LhsDesign design =
        stats::lhs_normal(count, kShiftDims, rng);
    z = design.values;
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t d = 0; d < kShiftDims; ++d) {
        z[i * kShiftDims + d] = rng.normal();
      }
    }
  }

  // Apply the defensive-mixture proposal and compute log-weights.
  // The first (1 - alpha) fraction of the shard's rows is shifted by
  // s, the rest stays on the nominal density (LHS row order carries
  // no structure — strata are permuted per dimension — so a block
  // split is as stratified as any interleaving). Every draw is
  // weighted by the same mixture density regardless of which
  // component generated it. The zero-shift branch leaves the draw
  // bits untouched (x + 0.0 is not an identity for -0.0) and pins
  // every log-weight to exactly 0.
  const double alpha =
      std::clamp(config.defensive_alpha, 0.0, 0.9);
  const std::size_t shifted_rows =
      shifted ? static_cast<std::size_t>(
                    (1.0 - alpha) * static_cast<double>(count) + 0.5)
              : 0;
  const double log_alpha = std::log(alpha);  // -inf at alpha == 0
  const double log_beta = std::log1p(-alpha);
  const stats::Normal standard(0.0, 1.0);
  std::array<stats::Normal, kShiftDims> proposal;
  for (std::size_t d = 0; d < kShiftDims; ++d) {
    proposal[d] = stats::Normal(shift[d], 1.0);
  }
  std::vector<spice::VariationSample> draws(count);
  for (std::size_t i = 0; i < count; ++i) {
    double* zi = &z[i * kShiftDims];
    double lw = 0.0;
    if (shifted) {
      if (i < shifted_rows) {
        for (std::size_t d = 0; d < kShiftDims; ++d) zi[d] += shift[d];
      }
      double l0 = 0.0;  // log phi(z) summed over dimensions
      double l1 = 0.0;  // log phi(z - s)
      for (std::size_t d = 0; d < kShiftDims; ++d) {
        l0 += standard.log_pdf(zi[d]);
        l1 += proposal[d].log_pdf(zi[d]);
      }
      const double la = log_alpha + l0;
      const double lb = log_beta + l1;
      const double m = std::max(la, lb);
      const double log_q = m + std::log(std::exp(la - m) + std::exp(lb - m));
      lw = l0 - log_q;
    }
    draws[i] = sampler.from_standard_normal(zi);
    out.log_weight[out_offset + begin + i] = lw;
  }
  if (keep_z) {
    std::copy(z.begin(), z.end(),
              out.z.begin() + (out_offset + begin) * kShiftDims);
  }

  // Simulate in checkpoint blocks (delay only; the transition output
  // is scratch) so an armed serve deadline fires within one block.
  std::vector<double> delay(count);
  std::vector<double> transition(count);
  const std::span<const spice::VariationSample> draw_span(draws);
  for (std::size_t j = 0; j < count; j += kCheckpointBlock) {
    core::checkpoint_every(j, kCheckpointBlock);
    const std::size_t n = std::min(kCheckpointBlock, count - j);
    spice::simulate_stage_batch(stage, condition, corner,
                                draw_span.subspan(j, n),
                                std::span<double>(delay).subspan(j, n),
                                std::span<double>(transition).subspan(j, n));
  }
  for (std::size_t i = 0; i < count; ++i) {
    out.fail[out_offset + begin + i] =
        delay[i] > threshold_ns ? 1 : 0;
  }
  if (keep_z) {
    std::copy(delay.begin(), delay.end(),
              out.delay.begin() + out_offset + begin);
  }
}

// Appends one batch of `n` draws to `out`. Shard seeds derive from
// `base_seed` with the spice::run_monte_carlo rule: the single-shard
// stream uses the seed directly, sharded streams combine per shard.
void run_batch(const spice::StageElectrical& stage,
               const spice::ArcCondition& condition,
               const spice::ProcessCorner& corner, const IsConfig& config,
               const ShiftVector& shift, double threshold_ns,
               std::uint64_t base_seed, std::size_t n, bool keep_z,
               DrawSet& out) {
  const std::size_t offset = out.log_weight.size();
  out.log_weight.resize(offset + n);
  out.fail.resize(offset + n);
  if (keep_z) {
    out.z.resize((offset + n) * kShiftDims);
    out.delay.resize(offset + n);
  }
  const std::size_t shards =
      std::min(std::max<std::size_t>(config.shards, 1), n);
  if (shards <= 1) {
    run_is_shard(stage, condition, corner, config, shift, threshold_ns,
                 base_seed, 0, n, keep_z, out, offset);
    return;
  }
  exec::parallel_for(shards, 1, [&](std::size_t s) {
    const std::size_t begin = n * s / shards;
    const std::size_t end = n * (s + 1) / shards;
    if (begin == end) return;
    run_is_shard(stage, condition, corner, config, shift, threshold_ns,
                 stats::combine_seed(base_seed, s + 1), begin, end, keep_z,
                 out, offset);
  });
}

// Batch seed sequence: batch 0 uses the configured seed verbatim (so
// a single-batch zero-shift run is bit-identical to run_monte_carlo
// with the same seed), later batches derive independent streams.
std::uint64_t batch_seed(std::uint64_t seed, std::size_t batch_index) {
  return batch_index == 0 ? seed : stats::combine_seed(seed, batch_index);
}

}  // namespace

WeightStats analyze_weights(std::span<const double> log_weights,
                            std::span<const unsigned char> fail) {
  WeightStats stats;
  const std::size_t n = log_weights.size();
  if (n == 0) return stats;
  // Log-sum-exp: shift by the max log-weight so the largest weight is
  // exactly 1. Every output below is a ratio of the shifted sums, so
  // the shift (and any constant log-weight offset) cancels exactly.
  double max_lw = log_weights[0];
  for (const double lw : log_weights) max_lw = std::max(max_lw, lw);
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  double sum_wf = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = std::exp(log_weights[i] - max_lw);
    sum_w += w;
    sum_w2 += w * w;
    if (fail[i] != 0) {
      sum_wf += w;
      ++stats.failures;
    }
  }
  if (!(sum_w > 0.0)) return stats;
  stats.p_fail = sum_wf / sum_w;
  stats.ess = sum_w * sum_w / sum_w2;
  stats.max_weight_fraction = 1.0 / sum_w;  // max shifted weight is 1
  // Delta-method variance of the ratio estimator:
  //   Var(p) ~= sum_i (wbar_i * (f_i - p))^2,  wbar_i = w_i / sum(w).
  // For all-equal weights this reduces exactly to the binomial
  // p(1-p)/n, so the brute-force baseline shares this code path.
  double var = 0.0;
  double norm_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double wbar = std::exp(log_weights[i] - max_lw) / sum_w;
    norm_sum += wbar;
    const double d = (fail[i] != 0 ? 1.0 : 0.0) - stats.p_fail;
    var += (wbar * d) * (wbar * d);
  }
  stats.normalized_sum = norm_sum;
  stats.std_err = std::sqrt(var);
  return stats;
}

double brute_force_equivalent_samples(double p_fail, double rel_err) {
  if (!(p_fail > 0.0) || p_fail >= 1.0 || !(rel_err > 0.0)) return kInf;
  return (1.0 - p_fail) / (p_fail * rel_err * rel_err);
}

ImportanceSampler::ImportanceSampler(const spice::StageElectrical& stage,
                                     const spice::ArcCondition& condition,
                                     const spice::ProcessCorner& corner,
                                     const IsConfig& config)
    : stage_(stage), condition_(condition), corner_(corner), config_(config) {}

double ImportanceSampler::delay_at(const ShiftVector& z) const {
  const spice::VariationSampler sampler(corner_);
  const spice::VariationSample sample =
      sampler.from_standard_normal(z.data());
  return spice::simulate_stage(stage_, condition_, corner_, sample).delay_ns;
}

ShiftVector ImportanceSampler::find_shift(double threshold_ns) const {
  obs::TraceSpan span("yield.pilot", [&] {
    return obs::ArgsBuilder().add("threshold_ns", threshold_ns).str();
  });
  static obs::Counter& pilot_sims = obs::counter("yield.pilot.sims");
  std::size_t sims = 0;
  const auto probe = [&](const ShiftVector& z) {
    ++sims;
    return delay_at(z);
  };

  ShiftVector shift{};
  ShiftVector z{};
  const double delay0 = probe(z);
  if (!(delay0 < threshold_ns)) {
    // The nominal die already fails: not a rare event, no shift
    // needed (plain MC sees failures immediately).
    pilot_sims.add(sims);
    return shift;
  }

  // Candidate ascent directions. The gradient at the origin alone is
  // not enough: a bimodal response ("2 Peaks") keeps its dominant
  // failure region where the competing mechanism engages, which the
  // local mechanism-A slope does not point at — the boundary along
  // the origin gradient can sit at |z| ~ 8 while the true design
  // point is at |z| ~ 3. So the pilot scans the gradient direction,
  // every coordinate axis (both signs) and a seeded spread of random
  // unit vectors, bisects the boundary distance along each ray, and
  // keeps the closest failing point — a deterministic multi-start
  // FORM search (a few hundred analytic simulations, microseconds
  // each).
  const double h = config_.gradient_step > 0.0 ? config_.gradient_step : 0.05;
  ShiftVector grad{};
  for (std::size_t d = 0; d < kShiftDims; ++d) {
    z = ShiftVector{};
    z[d] = h;
    const double up = probe(z);
    z[d] = -h;
    const double down = probe(z);
    grad[d] = (up - down) / (2.0 * h);
  }
  std::vector<ShiftVector> directions;
  const double gnorm = norm(grad);
  if (gnorm > 0.0 && std::isfinite(gnorm)) {
    ShiftVector dir{};
    for (std::size_t d = 0; d < kShiftDims; ++d) dir[d] = grad[d] / gnorm;
    directions.push_back(dir);
  }
  for (std::size_t d = 0; d < kShiftDims; ++d) {
    ShiftVector dir{};
    dir[d] = 1.0;
    directions.push_back(dir);
    dir[d] = -1.0;
    directions.push_back(dir);
  }
  {
    stats::Rng dir_rng(stats::combine_seed(config_.seed, 0xD12ull));
    for (int k = 0; k < 24; ++k) {
      ShiftVector dir{};
      for (double& v : dir) v = dir_rng.normal();
      const double dnorm = norm(dir);
      if (!(dnorm > 0.0)) continue;
      for (double& v : dir) v /= dnorm;
      directions.push_back(dir);
    }
  }

  // Boundary distance along one ray: expanding bracket + bisection;
  // infinity when the ray never fails within the shift cap.
  const double t_max =
      config_.max_shift_norm > 0.0 ? config_.max_shift_norm : 8.0;
  const auto boundary_distance = [&](const ShiftVector& dir) {
    const auto ray_delay = [&](double t) {
      ShiftVector point{};
      for (std::size_t d = 0; d < kShiftDims; ++d) point[d] = t * dir[d];
      return probe(point);
    };
    double lo = 0.0;
    double hi = 0.5;
    while (hi < t_max && ray_delay(hi) < threshold_ns) {
      lo = hi;
      hi = std::min(hi * 2.0, t_max);
    }
    if (ray_delay(hi) < threshold_ns) return kInf;
    for (int iter = 0; iter < 30; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (ray_delay(mid) < threshold_ns) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return hi;
  };
  double best_t = kInf;
  ShiftVector best_dir{};
  for (const ShiftVector& dir : directions) {
    const double t = boundary_distance(dir);
    if (t < best_t) {
      best_t = t;
      best_dir = dir;
    }
  }
  // The on-ray design point, when any ray crossed within the cap.
  // This is only a fallback: for bimodal and mixed failure regions the
  // closest *on-ray* crossing can sit far past the true design point
  // (the dominant failure mass needs movement no single ray combines),
  // and anchoring a proposal there puts the elite draws in a region of
  // negligible nominal density where the guarded CE updates below
  // never engage. The cross-entropy schedule therefore always starts
  // from the nominal proposal and only falls back here when it fails.
  ShiftVector on_ray{};
  const bool have_on_ray = best_t < t_max;
  if (have_on_ray) {
    for (std::size_t d = 0; d < kShiftDims; ++d) {
      on_ray[d] = best_t * best_dir[d];
    }
  }
  pilot_sims.add(sims);
  if (config_.pilot_samples == 0 || config_.refine_iterations == 0) {
    return on_ray;  // refinement disabled: best deterministic answer
  }

  // Adaptive cross-entropy with a quantile schedule, from the nominal
  // proposal: each round draws a pilot batch from the current proposal
  // and re-centers the shift on the weighted mean of the "elite"
  // draws above a running threshold gamma = min(target,
  // 90th-percentile pilot delay). Walking gamma up instead of jumping
  // straight to the target is what makes the pilot robust: the top
  // decile of every pilot batch always exists, so the schedule climbs
  // toward the failure region one conditional mean at a time,
  // whatever its shape. Once gamma reaches the target,
  // `refine_iterations` polish rounds run against the real threshold.
  // The refined shift is frozen before estimation, so estimation
  // weights always match the proposal that generated the draws.
  static obs::Counter& pilot_samples = obs::counter("yield.pilot.samples");
  constexpr std::size_t kMaxRounds = 16;
  constexpr double kEliteFraction = 0.10;
  std::size_t target_rounds = 0;
  bool reached_target = false;
  for (std::size_t round = 0;
       round < kMaxRounds && target_rounds < config_.refine_iterations;
       ++round) {
    DrawSet pilot;
    run_batch(stage_, condition_, corner_, config_, shift, threshold_ns,
              stats::combine_seed(stats::combine_seed(config_.seed, 0xCEull),
                                  round + 1),
              config_.pilot_samples, /*keep_z=*/true, pilot);
    pilot_samples.add(config_.pilot_samples);
    std::vector<double> sorted(pilot.delay);
    const std::size_t q_idx = static_cast<std::size_t>(
        (1.0 - kEliteFraction) * static_cast<double>(sorted.size()));
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(q_idx),
                     sorted.end());
    double gamma = sorted[q_idx];
    if (!(gamma < threshold_ns)) {
      gamma = threshold_ns;
      ++target_rounds;
    }
    double max_lw = -kInf;
    for (std::size_t i = 0; i < pilot.delay.size(); ++i) {
      if (pilot.delay[i] > gamma) {
        max_lw = std::max(max_lw, pilot.log_weight[i]);
      }
    }
    if (max_lw == -kInf) continue;  // empty elite set: redraw
    double sum_w = 0.0;
    double sum_w2 = 0.0;
    ShiftVector mean{};
    for (std::size_t i = 0; i < pilot.delay.size(); ++i) {
      if (!(pilot.delay[i] > gamma)) continue;
      const double w = std::exp(pilot.log_weight[i] - max_lw);
      sum_w += w;
      sum_w2 += w * w;
      for (std::size_t d = 0; d < kShiftDims; ++d) {
        mean[d] += w * pilot.z[i * kShiftDims + d];
      }
    }
    if (!(sum_w > 0.0)) continue;
    // Guarded update: the weighted conditional mean is heavy-tailed —
    // one maximal-weight elite draw can drag the shift far from the
    // design point. Skip (not freeze: the next round redraws with a
    // fresh seed) any round whose effective elite count is too thin
    // to trust.
    const double effective_elites = sum_w * sum_w / sum_w2;
    if (effective_elites < 8.0) continue;
    for (double& v : mean) v /= sum_w;
    const double mnorm = norm(mean);
    if (mnorm > t_max) {
      for (double& v : mean) v *= t_max / mnorm;
    }
    shift = mean;
    if (gamma == threshold_ns) reached_target = true;
    if (std::getenv("LVF2_YIELD_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "CE round=%zu gamma=%g target=%zu eff=%g |shift|=%g\n",
                   round, gamma, target_rounds, effective_elites,
                   norm(shift));
    }
  }
  // The schedule never produced an accepted target-level proposal:
  // fall back to the on-ray design point (or, failing that too, plain
  // MC under a zero shift — correct, just not accelerated).
  if (!reached_target) return on_ray;
  return shift;
}

IsEstimate ImportanceSampler::estimate(double threshold_ns) const {
  return estimate_with_shift(threshold_ns, find_shift(threshold_ns));
}

IsEstimate ImportanceSampler::estimate_with_shift(
    double threshold_ns, const ShiftVector& shift) const {
  obs::TraceSpan span("yield.is", [&] {
    return obs::ArgsBuilder()
        .add("threshold_ns", threshold_ns)
        .add("max_samples", config_.max_samples)
        .str();
  });
  static obs::Counter& is_samples = obs::counter("yield.is.samples");
  static obs::Counter& is_batches = obs::counter("yield.is.batches");

  IsEstimate est;
  est.threshold_ns = threshold_ns;
  est.shift = shift;
  est.rel_err = kInf;

  DrawSet draws;
  std::size_t batch_index = 0;
  const std::size_t batch =
      std::max<std::size_t>(config_.batch_samples, 1);
  while (draws.log_weight.size() < config_.max_samples) {
    const std::size_t n =
        std::min(batch, config_.max_samples - draws.log_weight.size());
    run_batch(stage_, condition_, corner_, config_, shift, threshold_ns,
              batch_seed(config_.seed, batch_index), n, /*keep_z=*/false,
              draws);
    ++batch_index;
    is_samples.add(n);
    is_batches.add(1);
    const WeightStats stats = analyze_weights(draws.log_weight, draws.fail);
    est.p_fail = stats.p_fail;
    est.std_err = stats.std_err;
    est.ess = stats.ess;
    est.max_weight_fraction = stats.max_weight_fraction;
    est.failures = stats.failures;
    est.samples = draws.log_weight.size();
    est.rel_err = stats.p_fail > 0.0 ? stats.std_err / stats.p_fail : kInf;
    if (est.p_fail > 0.0 && est.rel_err <= config_.target_rel_err) {
      est.converged = true;
      break;
    }
  }
  obs::digest("yield.is.ess").observe(est.ess);
  return est;
}

BruteForceEstimate ImportanceSampler::brute_force(
    double threshold_ns, std::size_t max_samples,
    double target_rel_err) const {
  obs::TraceSpan span("yield.bruteforce", [&] {
    return obs::ArgsBuilder()
        .add("threshold_ns", threshold_ns)
        .add("max_samples", max_samples)
        .str();
  });
  static obs::Counter& bf_samples = obs::counter("yield.bf.samples");

  // The unshifted run shares the batching, draw path and estimator of
  // the IS loop — with all weights exactly 1 the self-normalized
  // estimate reduces to failures / n and the delta-method error to
  // the binomial sqrt(p(1-p)/n).
  IsConfig cfg = config_;
  cfg.max_samples = max_samples;
  cfg.target_rel_err = target_rel_err > 0.0 ? target_rel_err : -1.0;

  BruteForceEstimate est;
  est.threshold_ns = threshold_ns;
  est.rel_err = kInf;
  DrawSet draws;
  std::size_t batch_index = 0;
  const ShiftVector zero{};
  const std::size_t batch = std::max<std::size_t>(cfg.batch_samples, 1);
  while (draws.log_weight.size() < cfg.max_samples) {
    const std::size_t n =
        std::min(batch, cfg.max_samples - draws.log_weight.size());
    run_batch(stage_, condition_, corner_, cfg, zero, threshold_ns,
              batch_seed(cfg.seed, batch_index), n, /*keep_z=*/false, draws);
    ++batch_index;
    bf_samples.add(n);
    const WeightStats stats = analyze_weights(draws.log_weight, draws.fail);
    est.p_fail = stats.p_fail;
    est.std_err = stats.std_err;
    est.failures = stats.failures;
    est.samples = draws.log_weight.size();
    est.rel_err = stats.p_fail > 0.0 ? stats.std_err / stats.p_fail : kInf;
    if (target_rel_err > 0.0 && est.p_fail > 0.0 &&
        est.rel_err <= target_rel_err) {
      est.converged = true;
      break;
    }
  }
  return est;
}

namespace {

// Process-lifetime registry behind the manifest `yield_hs` section.
// Leaked singleton like the metrics registry: the section provider
// outlives every ManifestRecorder start/stop cycle.
struct YieldHsRow {
  std::string label;
  IsEstimate estimate;
};

struct YieldHsRegistry {
  static YieldHsRegistry& instance() {
    static YieldHsRegistry* registry = new YieldHsRegistry;
    return *registry;
  }

  std::string render() const {
    // Numbers render at the sink-wide %.9g: the canonical golden is
    // parse-then-reserialize of this text, and %.9g is idempotent
    // under that round trip (17 digits would not survive canon and
    // break the zero-tolerance yield-gate diff).
    std::lock_guard<std::mutex> lock(mutex);
    std::string out = "{\"rows\":[";
    bool first_row = true;
    for (const YieldHsRow& row : rows) {
      if (!first_row) out += ',';
      first_row = false;
      const IsEstimate& e = row.estimate;
      out += "{\"label\":";
      obs::json_append_string(out, row.label);
      const auto field = [&](const char* key, double v) {
        out += ",\"";
        out += key;
        out += "\":";
        obs::json_append_number(out, v);
      };
      field("sigma", e.sigma_level);
      field("threshold_ns", e.threshold_ns);
      field("p_fail", e.p_fail);
      field("std_err", e.std_err);
      field("rel_err", e.rel_err);
      field("samples", static_cast<double>(e.samples));
      field("failures", static_cast<double>(e.failures));
      field("ess", e.ess);
      field("max_weight_fraction", e.max_weight_fraction);
      out += ",\"converged\":";
      out += e.converged ? "true" : "false";
      out += ",\"shift\":[";
      for (std::size_t d = 0; d < kShiftDims; ++d) {
        if (d != 0) out += ',';
        obs::json_append_number(out, e.shift[d]);
      }
      out += "]}";
    }
    out += "]}";
    return out;
  }

  mutable std::mutex mutex;
  std::vector<YieldHsRow> rows;
  bool provider_registered = false;
};

}  // namespace

void record_yield_hs(std::string_view label, const IsEstimate& estimate) {
  YieldHsRegistry& registry = YieldHsRegistry::instance();
  bool need_provider = false;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.rows.push_back(YieldHsRow{std::string(label), estimate});
    if (!registry.provider_registered) {
      registry.provider_registered = true;
      need_provider = true;
    }
  }
  if (need_provider) {
    obs::ManifestRecorder::instance().set_section_provider(
        "yield_hs", [] { return YieldHsRegistry::instance().render(); });
  }
}

std::string yield_hs_section_json() {
  return YieldHsRegistry::instance().render();
}

void clear_yield_hs() {
  YieldHsRegistry& registry = YieldHsRegistry::instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.rows.clear();
}

}  // namespace lvf2::yield
