#pragma once
// High-sigma yield estimation by self-normalized importance sampling.
//
// Brute-force Monte Carlo needs ~(1-p)/(p*re^2) samples to estimate a
// failure probability p at relative error re — hopeless past ~4 sigma
// (p = 3e-5 at 4 sigma already wants 3e7 samples for re = 0.1). The
// engine here instead draws from a defensive mean-shifted mixture
// proposal in the 7-dimensional standard-normal space of the process
// variations (spice::VariationSampler maps z to physical units):
//
//   q(z) = alpha * phi(z) + (1 - alpha) * phi(z - s)
//
// A (1 - alpha) fraction of the draws is shifted by s onto the
// failure boundary, so failures stop being rare under q; the alpha
// fraction stays on the nominal density, which bounds every
// likelihood ratio w(z) = phi(z)/q(z) by 1/alpha (Hesterberg's
// defensive mixture). Without the defensive component a
// 7-dimensional mean shift self-normalizes terribly — E_q[w^2] =
// exp(|s|^2) blows up the weight variance and the effective sample
// size collapses to a handful of draws; with it ESS >= alpha * n by
// construction. Weights accumulate in log space:
//
//   log w(z) = l0 - logsumexp(log(alpha) + l0, log(1 - alpha) + l1),
//   l0 = sum_d log phi(z_d),   l1 = sum_d log phi(z_d - s_d)
//
// The estimate is self-normalized, p = sum(w*1{fail}) / sum(w): the
// normal densities' shared constants cancel exactly and the estimator
// is invariant to any constant offset of the log-weights, which is
// what makes the log-sum-exp evaluation safe at large shifts. The
// price is a small O(1/ESS) bias, negligible once the defensive
// component holds the ESS up (DESIGN.md decision 22).
//
// The shift is chosen by quantile-scheduled cross-entropy starting
// from the NOMINAL proposal: each pilot round thresholds its batch at
// the 90th delay percentile (capped at the target threshold) and
// re-centers the shift on the phi/q-weighted mean of the draws above
// it, walking toward the failure region until the schedule reaches
// the target; an effective-elite-count guard skips heavy-tailed
// updates. A multi-start FORM-style search (boundary bisection along
// a fan of candidate rays: the central-difference gradient at z = 0,
// every coordinate axis in both signs, a seeded spread of random unit
// vectors) supplies the fallback design point when refinement is
// disabled or CE never reaches the target — fallback, not anchor,
// because for bimodal responses on-ray threshold crossings land in
// the far tail where phi-mass is negligible, and CE anchored there
// never walks (DESIGN.md decision 22). The shift is frozen before
// estimation begins — weights are only valid for the proposal that
// actually generated the draws.
//
// Determinism: proposals are Latin-Hypercube stratified and generated
// in seed-sharded contiguous slices exactly like spice::run_monte_carlo
// (one rng per shard, seed = combine_seed(seed, shard + 1), serial
// fixed-order reduction), so every estimate is byte-identical at any
// thread count, and a zero shift reproduces the plain MC sample set
// bitwise.
//
// Diagnostics: every estimate carries the effective sample size
// ESS = (sum w)^2 / sum w^2 and the largest normalized weight; a
// collapsed ESS or a single dominating weight is the classic sign of
// a bad proposal, and the yield gate asserts on both.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "spice/cellsim.h"
#include "spice/process.h"

namespace lvf2::yield {

/// Dimensionality of the proposal space (one shift per process
/// variation dimension).
inline constexpr std::size_t kShiftDims = spice::VariationSample::kDimensions;

/// A proposal mean shift in standard-normal (z) space.
using ShiftVector = std::array<double, kShiftDims>;

/// Importance-sampling run configuration.
struct IsConfig {
  /// Samples drawn between convergence checks.
  std::size_t batch_samples = 8192;
  /// Hard sample budget; the estimate is returned unconverged when
  /// the relative-error target is still unmet at the budget.
  std::size_t max_samples = 262144;
  /// Stop once std_err / p_fail drops to this (with p_fail > 0).
  double target_rel_err = 0.10;
  std::uint64_t seed = 0x1234;
  /// Sampling shards per batch, exactly as spice::McConfig::shards:
  /// 1 reproduces the single-stream draw order, > 1 derives one seed
  /// per shard and generates shards in parallel (deterministic for a
  /// fixed shard count at any thread count).
  std::size_t shards = 1;
  /// Latin Hypercube (stratified) proposals vs plain MC.
  bool use_lhs = true;
  /// Mass of the defensive (unshifted) mixture component: bounds
  /// every likelihood ratio by 1/alpha and keeps ESS >= alpha * n.
  /// 0 gives the pure mean-shifted proposal (weight degeneracy risk);
  /// values are clamped to [0, 0.9].
  double defensive_alpha = 0.5;

  // Pilot (shift search) knobs.
  /// Draws per cross-entropy refinement round (0 disables refinement
  /// together with refine_iterations = 0).
  std::size_t pilot_samples = 2048;
  /// Target-level cross-entropy polish rounds. The quantile schedule
  /// runs as many extra sub-target walking rounds as it needs first
  /// (capped internally); 0 disables refinement entirely.
  std::size_t refine_iterations = 2;
  /// Central-difference step in z units for the pilot gradient.
  double gradient_step = 0.05;
  /// Cap on |shift| in z units (8 sigma of joint shift is already far
  /// beyond any yield target this engine serves).
  double max_shift_norm = 8.0;
};

/// One importance-sampling estimate with its diagnostics.
struct IsEstimate {
  double threshold_ns = 0.0;  ///< failure boundary: delay > threshold
  double sigma_level = 0.0;   ///< caller-set label (mu + sigma*sd), 0 when n/a
  double p_fail = 0.0;        ///< self-normalized failure probability
  double std_err = 0.0;       ///< delta-method standard error of p_fail
  double rel_err = 0.0;       ///< std_err / p_fail (inf while p_fail == 0)
  std::size_t samples = 0;    ///< proposal draws consumed
  std::size_t failures = 0;   ///< draws past the threshold
  double ess = 0.0;           ///< effective sample size, in (0, samples]
  double max_weight_fraction = 0.0;  ///< largest normalized weight
  ShiftVector shift{};        ///< proposal mean shift used
  bool converged = false;     ///< hit target_rel_err within max_samples
};

/// One brute-force (unshifted) Monte-Carlo estimate — the baseline
/// the bench and the accuracy gate compare against.
struct BruteForceEstimate {
  double threshold_ns = 0.0;
  double p_fail = 0.0;
  double std_err = 0.0;  ///< sqrt(p(1-p)/n), the binomial error
  double rel_err = 0.0;
  std::size_t samples = 0;
  std::size_t failures = 0;
  bool converged = false;
};

/// Normalized-weight diagnostics of one weighted sample set, computed
/// with a single log-sum-exp pass. Exposed (with analyze_weights) for
/// the statistical property tests.
struct WeightStats {
  double p_fail = 0.0;    ///< sum(w*fail) / sum(w)
  double std_err = 0.0;   ///< delta-method SE of p_fail
  double ess = 0.0;       ///< (sum w)^2 / sum w^2
  double max_weight_fraction = 0.0;
  double normalized_sum = 0.0;  ///< sum of w_i / sum(w) — 1 by construction
  std::size_t failures = 0;
};

/// Self-normalized estimate + diagnostics from raw log-weights and
/// failure flags (fail[i] != 0 means draw i crossed the threshold).
/// Invariant under any constant offset of the log-weights.
WeightStats analyze_weights(std::span<const double> log_weights,
                            std::span<const unsigned char> fail);

/// The number of plain Monte-Carlo samples a binomial estimator needs
/// to reach relative error `rel_err` at failure probability `p_fail`:
/// (1 - p) / (p * re^2). The "brute-force equivalent" yardstick of
/// bench_yield_sigma.
double brute_force_equivalent_samples(double p_fail, double rel_err);

/// Importance-sampling yield estimator for one arc at one condition.
/// Immutable after construction; all methods are const and
/// deterministic functions of (config, threshold).
class ImportanceSampler {
 public:
  ImportanceSampler(const spice::StageElectrical& stage,
                    const spice::ArcCondition& condition,
                    const spice::ProcessCorner& corner, const IsConfig& config);

  /// Deterministic pilot: quantile-scheduled cross-entropy from the
  /// nominal proposal, falling back to multi-start boundary bisection
  /// over a fan of candidate rays when refinement is disabled or
  /// never reaches the target threshold.
  /// Returns the zero shift when the nominal point already fails.
  ShiftVector find_shift(double threshold_ns) const;

  /// find_shift + estimate_with_shift.
  IsEstimate estimate(double threshold_ns) const;

  /// Runs the batched relative-error-stopped estimation under a fixed
  /// proposal shift. A zero shift degenerates to plain Monte Carlo
  /// (all weights exactly 1, same draws as spice::run_monte_carlo).
  IsEstimate estimate_with_shift(double threshold_ns,
                                 const ShiftVector& shift) const;

  /// Unshifted baseline with the same batching, draw path and
  /// stopping rule; `target_rel_err` <= 0 disables early stopping
  /// and always consumes `max_samples`.
  BruteForceEstimate brute_force(double threshold_ns,
                                 std::size_t max_samples,
                                 double target_rel_err) const;

  /// Delay of the deterministic die at standard-normal point z —
  /// the pilot's probe, exposed for tests.
  double delay_at(const ShiftVector& z) const;

  const IsConfig& config() const { return config_; }

 private:
  spice::StageElectrical stage_;
  spice::ArcCondition condition_;
  spice::ProcessCorner corner_;
  IsConfig config_;
};

/// Appends one estimate to the manifest `yield_hs` section (rows keep
/// insertion order; the provider is registered on first use and the
/// section renders at precision 17 so golden diffs are byte-stable).
void record_yield_hs(std::string_view label, const IsEstimate& estimate);

/// The rendered `yield_hs` section document (test support).
std::string yield_hs_section_json();

/// Drops all recorded rows (test support).
void clear_yield_hs();

}  // namespace lvf2::yield
