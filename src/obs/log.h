#pragma once
// Leveled structured logger: `event` plus key=value fields, one line
// per record, single writer behind a mutex. The level comes from
// LVF2_LOG=debug|info|warn|error at startup and defaults to off, so
// an uninstrumented run emits nothing. Hot call sites should guard
// with log_enabled() before building fields; warn/error sites may
// call directly (the fields are cheap relative to how rarely they
// fire).
//
// Line format (elapsed time in seconds since process start):
//   [lvf2 12.345s warn] em.nonconverged cell=NAND2_X1 arc="A -> Y"

#include <atomic>
#include <concepts>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <string_view>

namespace lvf2::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

namespace detail {
extern std::atomic<int> g_log_level;
}  // namespace detail

/// True when records at `level` pass the filter (relaxed load).
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         detail::g_log_level.load(std::memory_order_relaxed);
}

/// Sets the filter level (kOff silences everything).
void set_log_level(LogLevel level);
/// Parses "debug"/"info"/"warn"/"error" (anything else means kOff).
LogLevel parse_log_level(std::string_view text);

/// Redirects log output (default stderr; pass nullptr to restore).
/// For tests — not synchronized with concurrent loggers.
void set_log_stream(std::FILE* stream);

/// One key=value field of a log record.
struct LogField {
  LogField(std::string_view k, std::string_view v)
      : key(k), value(v) {}
  LogField(std::string_view k, const char* v)
      : key(k), value(v) {}
  template <std::integral T>
  LogField(std::string_view k, T v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  template <std::floating_point T>
  LogField(std::string_view k, T v)
      : key(k), value(std::to_string(v)), quoted(false) {}
  LogField(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false"), quoted(false) {}

  std::string_view key;
  std::string value;
  bool quoted = true;  ///< string values are quoted when they need it
};

/// Emits one record if `level` passes the filter.
void log(LogLevel level, std::string_view event,
         std::initializer_list<LogField> fields = {});

inline void log_debug(std::string_view event,
                      std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kDebug, event, fields);
}
inline void log_info(std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kInfo, event, fields);
}
inline void log_warn(std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kWarn, event, fields);
}
inline void log_error(std::string_view event,
                      std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kError, event, fields);
}

}  // namespace lvf2::obs
