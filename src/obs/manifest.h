#pragma once
// Run manifest: a versioned JSON document capturing what a
// characterize / evaluation / SSTA run did and how well it did it —
// run config, per-stage wall/CPU rollups aggregated from the tracer,
// a snapshot of every metrics instrument, a per-arc QoR (quality of
// result) table of ModelErrors and error-reduction multiples vs the
// LVF baseline, and SSTA endpoint QoR rows. Enabled by
// LVF2_MANIFEST=<path> at startup; written atomically (<path>.tmp
// then rename) at process exit or on ManifestRecorder::stop().
//
// Disabled-path contract: every hook site guards on
// manifest_enabled() — one relaxed atomic load, same as a disabled
// trace span (BM_DisabledManifest in bench_perf).
//
// Schema (keys in this fixed order; see README "Observability"):
//   {"schema_version":1,"tool":"lvf2",
//    "config":{...},                       // key -> string or number
//    "stages":{"name":{"count":N,"wall_ms":W,"cpu_ms":C},...},
//    "metrics":{"counters":...},           // registry snapshot
//    "arcs":[...per-arc QoR rows...],
//    "endpoints":[...SSTA endpoint rows...],
//    "resource":{...always-on peak RSS / rusage / alloc rollup...},
//    ...provider sections (exec, cache, profile)...}
//
// The resource/exec/profile sections carry nondeterministic run
// telemetry; lvf2_report diff skips them (and stages/metrics) unless
// opted in with --sections, so the zero-tolerance determinism gates
// keep comparing QoR only.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace lvf2::obs {

inline constexpr int kManifestSchemaVersion = 1;

namespace detail {
extern std::atomic<bool> g_manifest_enabled;
}  // namespace detail

/// True when a manifest sink is armed. Relaxed load: the only cost
/// paid by hook sites when no manifest was requested.
inline bool manifest_enabled() {
  return detail::g_manifest_enabled.load(std::memory_order_relaxed);
}

/// Per-model QoR of one golden comparison: the three raw paper
/// metrics plus their error-reduction multiples vs the LVF baseline
/// (Eq. 12; x_* == 1 for LVF itself).
struct ModelQor {
  std::string model;  ///< "LVF2", "Norm2", "LESN", "LVF"
  double binning = 0.0;
  double yield_3sigma = 0.0;
  double cdf_rmse = 0.0;
  double x_binning = 1.0;
  double x_yield_3sigma = 1.0;
  double x_cdf_rmse = 1.0;
};

/// One row of the per-arc QoR table: a characterized table entry (or
/// a bench evaluation row) assessed against its golden sample set.
struct ArcQor {
  std::string table;   ///< origin: "characterize", "table1", ...
  std::string cell;    ///< cell name or scenario label
  std::string arc;     ///< arc label ("" for non-arc rows)
  std::string metric;  ///< "delay", "transition", "" when n/a
  int load_idx = -1;   ///< grid indices (-1 when n/a)
  int slew_idx = -1;
  std::string status = "ok";  ///< "ok" or the entry's failure message
  double golden_mean = 0.0;
  double golden_stddev = 0.0;
  double golden_skewness = 0.0;
  std::uint64_t em_iterations = 0;
  double em_log_likelihood = 0.0;
  bool em_converged = false;
  std::string degradation = "none";  ///< FitDegradation short name
  std::vector<ModelQor> models;
};

/// One SSTA endpoint QoR row: the propagated arrival distribution at
/// the end of a path, per model, vs the MC-SSTA golden.
struct EndpointQor {
  std::string path;
  std::uint64_t depth = 0;
  double golden_mean = 0.0;
  double golden_stddev = 0.0;
  double golden_skewness = 0.0;
  double golden_yield_3sigma = 0.0;  ///< empirical P(t <= mu + 3 sigma)
  std::vector<ModelQor> models;
};

/// The process-wide manifest recorder (leaked singleton). All methods
/// are thread-safe; hook sites must guard with manifest_enabled()
/// before building records.
class ManifestRecorder {
 public:
  static ManifestRecorder& instance();

  /// Arms the recorder: records `path` as the sink, enables the hook
  /// flag and switches the tracer into rollup mode so stage timings
  /// accumulate even without LVF2_TRACE. No-op when already armed.
  void start(const std::string& path);
  /// Renders and atomically writes the manifest, then disarms and
  /// clears the recorded state. No-op when not armed.
  void stop();
  /// Disarms and clears without writing (test support).
  void discard();

  /// Run-configuration entries (last write wins, insertion order
  /// preserved). Strings are escaped; numbers render as JSON numbers.
  void set_config(std::string_view key, std::string_view value);
  /// Literal overload: without it, const char* would convert to bool
  /// (a standard conversion) in preference to string_view.
  void set_config(std::string_view key, const char* value) {
    set_config(key, std::string_view(value));
  }
  void set_config(std::string_view key, double value);
  void set_config(std::string_view key, std::uint64_t value);
  void set_config(std::string_view key, bool value);

  /// Registers a persistent config entry: the provider is evaluated
  /// at to_json() time and its result rendered into the config
  /// section after the plain set_config entries — a fixed position
  /// regardless of when during a session the provider was registered,
  /// which keeps byte-compared manifest pairs stable. Plain
  /// set_config entries are cleared on stop(), so a process-lifetime
  /// fact recorded once — e.g. the resolved SIMD tier — would appear
  /// only in whichever session happened to be armed at resolution
  /// time; a provider lands it in every manifest. Last registration
  /// per key wins; a plain set_config of the same key in a session
  /// overrides the provided value for that manifest.
  void set_config_provider(std::string key,
                           std::function<std::string()> provider);

  void add_arc(ArcQor arc);
  void add_endpoint(EndpointQor endpoint);

  /// Registers a subsystem section rendered at to_json() time: the
  /// manifest gains a top-level `"key": <provider()>` member after
  /// the fixed schema keys. The provider returns rendered JSON and
  /// must not call back into the recorder. Last registration per key
  /// wins; providers outlive start()/stop() cycles (their lifetime is
  /// the providing subsystem's, e.g. the result cache while armed).
  void set_section_provider(std::string key,
                            std::function<std::string()> provider);
  void clear_section_provider(std::string_view key);

  /// The full manifest document as JSON (config + tracer stage
  /// rollups + metrics snapshot + QoR tables + provider sections).
  std::string to_json() const;

 private:
  ManifestRecorder() = default;
  void set_config_rendered(std::string_view key, std::string rendered);

  mutable std::mutex mutex_;
  std::string path_;
  bool armed_ = false;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, std::function<std::string()>>>
      config_providers_;  // persist across start()/stop() cycles
  std::vector<ArcQor> arcs_;
  std::vector<EndpointQor> endpoints_;
  std::vector<std::pair<std::string, std::function<std::string()>>>
      sections_;
};

/// Runs `fn(ManifestRecorder&)` only when a manifest is armed; the
/// disabled path is a single relaxed atomic load.
template <typename F>
inline void with_manifest(F&& fn) {
  if (!manifest_enabled()) return;
  fn(ManifestRecorder::instance());
}

/// Writes `content` to `path` atomically: <path>.tmp then rename(), so
/// a crashed run never leaves a truncated file. Returns false (after
/// a one-line stderr warning) on failure. Shared by every JSON sink.
bool write_file_atomic(const std::string& path, std::string_view content);

/// JSON codec of one ArcQor row, used by the result cache to replay
/// manifest rows on a warm run. The document mirrors the manifest's
/// per-arc schema; serialize it at full precision (JsonWriteOptions
/// {17}) so the replayed row renders byte-identical to the original.
JsonValue arc_qor_to_json(const ArcQor& arc);
/// Inverse; nullopt when required members are missing or mistyped
/// (a corrupted cache entry must degrade to recompute, not crash).
std::optional<ArcQor> arc_qor_from_json(const JsonValue& doc);

}  // namespace lvf2::obs
