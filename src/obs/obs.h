#pragma once
// Umbrella header of the observability subsystem: scoped-span
// tracing (trace.h), the process metrics registry (metrics.h), the
// structured logger (log.h) and the QoR run manifest (manifest.h).
// All four are driven by environment variables and cost a relaxed
// atomic load when disabled — see README.md "Observability".

#include "obs/log.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
