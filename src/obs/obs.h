#pragma once
// Umbrella header of the observability subsystem: scoped-span
// tracing (trace.h), the process metrics registry (metrics.h), the
// structured logger (log.h), the QoR run manifest (manifest.h), the
// sampling profiler (profile.h) and the resource accountant
// (resource.h). All are driven by environment variables and cost a
// relaxed atomic load when disabled — see README.md "Observability"
// and "Performance observability".

#include "obs/log.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/resource.h"
#include "obs/trace.h"
