#pragma once
// Mergeable streaming quantile sketch (merging t-digest, fixed
// compression). The serving layer records every request's queue wait
// and exec wall time into digests and answers "p99 right now" from
// ~2*compression centroids instead of a fixed bucket ladder — the
// tails (p99/p999) keep full resolution no matter where the
// distribution lands, which fixed histogram bounds cannot promise
// (DESIGN.md decision 20).
//
// Determinism contract: the digest is a deterministic function of the
// insertion sequence (and, for merge(), of the operand order).
// Incoming points buffer until kBufferFactor * compression entries,
// then a single sorted merge pass rebuilds the centroid list with the
// canonical asin scale function bounding per-centroid weight. The
// same sequence therefore always yields byte-identical to_json()
// output, which is what the manifest / golden-file gates diff.
// Merge is associative only up to sketch accuracy — quantiles of
// (a+b)+c and a+(b+c) agree to ~1/compression, not bitwise
// (tests/test_properties.cpp pins both properties).
//
// Thread safety: TDigest itself is not synchronized. The registry
// instrument (obs::Digest, metrics.h) wraps one behind a mutex.

#include <cstdint>
#include <optional>
#include <vector>

#include "obs/json.h"

namespace lvf2::obs {

/// One t-digest centroid: a weighted mean.
struct Centroid {
  double mean = 0.0;
  double weight = 0.0;
};

class TDigest {
 public:
  /// Larger compression = more centroids = tighter quantile error
  /// (~O(1/compression) at the median, much tighter in the tails).
  explicit TDigest(double compression = 100.0);

  /// Adds a point (weight w). Amortized O(1): buffers, then merges.
  void add(double x, double w = 1.0);

  /// Folds `other` into this digest (other is unchanged). The result
  /// is the digest of the concatenated streams up to sketch accuracy.
  void merge(const TDigest& other);

  /// Interpolated quantile estimate, q in [0,1]. NaN when empty;
  /// exact min/max at q=0/1.
  double quantile(double q) const;

  double count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double compression() const { return compression_; }

  /// Flushes the pending buffer into the centroid list (idempotent).
  void compress() const;
  /// Centroids sorted by mean (compresses first).
  const std::vector<Centroid>& centroids() const;

  /// {"compression":C,"count":N,"sum":S,"min":m,"max":M,
  ///  "centroids":[[mean,weight],...]} — 17-digit doubles, so a
  /// serialize/parse round trip is bit-exact.
  JsonValue to_json() const;
  std::string to_json_text() const;
  /// Rebuilds a digest from to_json() output; nullopt on a document
  /// that does not look like one.
  static std::optional<TDigest> from_json(const JsonValue& doc);

 private:
  static constexpr std::size_t kBufferFactor = 5;

  void merge_buffer() const;

  double compression_ = 100.0;
  double count_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  // Lazily compacted on read: quantile()/centroids()/to_json() are
  // logically const but may fold the buffer first.
  mutable std::vector<Centroid> centroids_;
  mutable std::vector<Centroid> buffer_;
};

}  // namespace lvf2::obs
