#include "obs/manifest.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <tuple>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace lvf2::obs {

namespace detail {
std::atomic<bool> g_manifest_enabled{false};
}  // namespace detail

namespace {

// Arms the recorder at static-initialization time so a manifest
// covers main() end to end, mirroring LVF2_TRACE / LVF2_METRICS.
struct ManifestEnvInit {
  ManifestEnvInit() {
    if (const char* path = std::getenv("LVF2_MANIFEST")) {
      if (path[0] != '\0') ManifestRecorder::instance().start(path);
    }
  }
} g_manifest_env_init;

void append_model_qor(std::string& out, const ModelQor& m) {
  json_append_string(out, m.model);
  out += ":{\"binning\":";
  json_append_number(out, m.binning);
  out += ",\"yield_3sigma\":";
  json_append_number(out, m.yield_3sigma);
  out += ",\"cdf_rmse\":";
  json_append_number(out, m.cdf_rmse);
  out += ",\"x_binning\":";
  json_append_number(out, m.x_binning);
  out += ",\"x_yield_3sigma\":";
  json_append_number(out, m.x_yield_3sigma);
  out += ",\"x_cdf_rmse\":";
  json_append_number(out, m.x_cdf_rmse);
  out += '}';
}

void append_models(std::string& out, const std::vector<ModelQor>& models) {
  out += "\"models\":{";
  for (std::size_t i = 0; i < models.size(); ++i) {
    if (i > 0) out += ',';
    append_model_qor(out, models[i]);
  }
  out += '}';
}

void append_arc(std::string& out, const ArcQor& a) {
  out += "{\"table\":";
  json_append_string(out, a.table);
  out += ",\"cell\":";
  json_append_string(out, a.cell);
  out += ",\"arc\":";
  json_append_string(out, a.arc);
  out += ",\"metric\":";
  json_append_string(out, a.metric);
  out += ",\"load_idx\":";
  json_append_number(out, a.load_idx);
  out += ",\"slew_idx\":";
  json_append_number(out, a.slew_idx);
  out += ",\"status\":";
  json_append_string(out, a.status);
  out += ",\"golden\":{\"mean\":";
  json_append_number(out, a.golden_mean);
  out += ",\"stddev\":";
  json_append_number(out, a.golden_stddev);
  out += ",\"skewness\":";
  json_append_number(out, a.golden_skewness);
  out += "},\"em\":{\"iterations\":";
  out += std::to_string(a.em_iterations);
  out += ",\"log_likelihood\":";
  json_append_number(out, a.em_log_likelihood);
  out += ",\"converged\":";
  out += a.em_converged ? "true" : "false";
  out += ",\"degradation\":";
  json_append_string(out, a.degradation);
  out += "},";
  append_models(out, a.models);
  out += '}';
}

// Deterministic serialization order: rows arrive in completion order,
// which under the thread pool varies run to run, so they are sorted
// by their identity key before rendering. Keeps the rendered manifest
// byte-stable at any thread count (the lvf2_report diff golden gate
// compares serial and parallel runs with zero tolerance).
auto arc_sort_key(const ArcQor& a) {
  return std::tie(a.table, a.cell, a.arc, a.metric, a.load_idx, a.slew_idx);
}

std::vector<const ArcQor*> sorted_arcs(const std::vector<ArcQor>& arcs) {
  std::vector<const ArcQor*> out;
  out.reserve(arcs.size());
  for (const ArcQor& a : arcs) out.push_back(&a);
  std::stable_sort(out.begin(), out.end(),
                   [](const ArcQor* x, const ArcQor* y) {
                     return arc_sort_key(*x) < arc_sort_key(*y);
                   });
  return out;
}

std::vector<const EndpointQor*> sorted_endpoints(
    const std::vector<EndpointQor>& endpoints) {
  std::vector<const EndpointQor*> out;
  out.reserve(endpoints.size());
  for (const EndpointQor& e : endpoints) out.push_back(&e);
  std::stable_sort(out.begin(), out.end(),
                   [](const EndpointQor* x, const EndpointQor* y) {
                     return std::tie(x->path, x->depth) <
                            std::tie(y->path, y->depth);
                   });
  return out;
}

void append_endpoint(std::string& out, const EndpointQor& e) {
  out += "{\"path\":";
  json_append_string(out, e.path);
  out += ",\"depth\":";
  out += std::to_string(e.depth);
  out += ",\"golden\":{\"mean\":";
  json_append_number(out, e.golden_mean);
  out += ",\"stddev\":";
  json_append_number(out, e.golden_stddev);
  out += ",\"skewness\":";
  json_append_number(out, e.golden_skewness);
  out += ",\"yield_3sigma\":";
  json_append_number(out, e.golden_yield_3sigma);
  out += "},";
  append_models(out, e.models);
  out += '}';
}

}  // namespace

bool write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "lvf2-obs: cannot open sink %s\n", tmp.c_str());
    return false;
  }
  // Signal-tolerant write loop: a daemon flushing its sinks during a
  // SIGTERM drain sees interrupted and short fwrites; retry the
  // remainder instead of leaving a truncated .tmp behind.
  std::size_t written = 0;
  while (written < content.size()) {
    errno = 0;
    const std::size_t n =
        std::fwrite(content.data() + written, 1, content.size() - written, f);
    written += n;
    if (n == 0) {
      if (errno == EINTR) {
        std::clearerr(f);
        continue;
      }
      break;
    }
  }
  const bool flushed = (std::fclose(f) == 0) && written == content.size();
  if (!flushed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "lvf2-obs: cannot finalize sink %s\n", path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

ManifestRecorder& ManifestRecorder::instance() {
  static ManifestRecorder* recorder = new ManifestRecorder();  // leaked
  return *recorder;
}

void ManifestRecorder::start(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (armed_) return;
    armed_ = true;
    path_ = path;
  }
  // Stage rollups come from the tracer even when LVF2_TRACE is unset.
  Tracer::instance().enable_rollup();
  detail::g_manifest_enabled.store(true, std::memory_order_relaxed);
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit([] { ManifestRecorder::instance().stop(); });
  }
}

void ManifestRecorder::stop() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_) return;
    path = path_;
  }
  const std::string json = to_json();
  write_file_atomic(path, json + "\n");
  discard();
}

void ManifestRecorder::discard() {
  detail::g_manifest_enabled.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
  path_.clear();
  config_.clear();
  arcs_.clear();
  endpoints_.clear();
}

void ManifestRecorder::set_config_rendered(std::string_view key,
                                           std::string rendered) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [k, v] : config_) {
    if (k == key) {
      v = std::move(rendered);
      return;
    }
  }
  config_.emplace_back(std::string(key), std::move(rendered));
}

void ManifestRecorder::set_config(std::string_view key,
                                  std::string_view value) {
  std::string rendered;
  json_append_string(rendered, value);
  set_config_rendered(key, std::move(rendered));
}

void ManifestRecorder::set_config(std::string_view key, double value) {
  std::string rendered;
  json_append_number(rendered, value);
  set_config_rendered(key, std::move(rendered));
}

void ManifestRecorder::set_config(std::string_view key, std::uint64_t value) {
  set_config_rendered(key, std::to_string(value));
}

void ManifestRecorder::set_config(std::string_view key, bool value) {
  set_config_rendered(key, value ? "true" : "false");
}

void ManifestRecorder::set_config_provider(
    std::string key, std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [k, fn] : config_providers_) {
    if (k == key) {
      fn = std::move(provider);
      return;
    }
  }
  config_providers_.emplace_back(std::move(key), std::move(provider));
}

namespace {

JsonValue jnum(double v) {
  JsonValue j;
  j.type = JsonValue::Type::kNumber;
  j.number = v;
  return j;
}

JsonValue jstr(std::string s) {
  JsonValue j;
  j.type = JsonValue::Type::kString;
  j.string = std::move(s);
  return j;
}

JsonValue jbool(bool b) {
  JsonValue j;
  j.type = JsonValue::Type::kBool;
  j.boolean = b;
  return j;
}

JsonValue jobj() {
  JsonValue j;
  j.type = JsonValue::Type::kObject;
  return j;
}

}  // namespace

JsonValue arc_qor_to_json(const ArcQor& arc) {
  JsonValue doc = jobj();
  doc.object.emplace_back("table", jstr(arc.table));
  doc.object.emplace_back("cell", jstr(arc.cell));
  doc.object.emplace_back("arc", jstr(arc.arc));
  doc.object.emplace_back("metric", jstr(arc.metric));
  doc.object.emplace_back("load_idx", jnum(arc.load_idx));
  doc.object.emplace_back("slew_idx", jnum(arc.slew_idx));
  doc.object.emplace_back("status", jstr(arc.status));
  JsonValue golden = jobj();
  golden.object.emplace_back("mean", jnum(arc.golden_mean));
  golden.object.emplace_back("stddev", jnum(arc.golden_stddev));
  golden.object.emplace_back("skewness", jnum(arc.golden_skewness));
  doc.object.emplace_back("golden", std::move(golden));
  JsonValue em = jobj();
  em.object.emplace_back("iterations",
                         jnum(static_cast<double>(arc.em_iterations)));
  em.object.emplace_back("log_likelihood", jnum(arc.em_log_likelihood));
  em.object.emplace_back("converged", jbool(arc.em_converged));
  em.object.emplace_back("degradation", jstr(arc.degradation));
  doc.object.emplace_back("em", std::move(em));
  JsonValue models = jobj();
  for (const ModelQor& m : arc.models) {
    JsonValue row = jobj();
    row.object.emplace_back("binning", jnum(m.binning));
    row.object.emplace_back("yield_3sigma", jnum(m.yield_3sigma));
    row.object.emplace_back("cdf_rmse", jnum(m.cdf_rmse));
    row.object.emplace_back("x_binning", jnum(m.x_binning));
    row.object.emplace_back("x_yield_3sigma", jnum(m.x_yield_3sigma));
    row.object.emplace_back("x_cdf_rmse", jnum(m.x_cdf_rmse));
    models.object.emplace_back(m.model, std::move(row));
  }
  doc.object.emplace_back("models", std::move(models));
  return doc;
}

std::optional<ArcQor> arc_qor_from_json(const JsonValue& doc) {
  if (!doc.is_object()) return std::nullopt;
  const JsonValue* golden = doc.find("golden");
  const JsonValue* em = doc.find("em");
  const JsonValue* models = doc.find("models");
  if (golden == nullptr || !golden->is_object() || em == nullptr ||
      !em->is_object() || models == nullptr || !models->is_object()) {
    return std::nullopt;
  }
  ArcQor arc;
  arc.table = doc.string_or("table", "");
  arc.cell = doc.string_or("cell", "");
  arc.arc = doc.string_or("arc", "");
  arc.metric = doc.string_or("metric", "");
  arc.load_idx = static_cast<int>(doc.number_or("load_idx", -1.0));
  arc.slew_idx = static_cast<int>(doc.number_or("slew_idx", -1.0));
  arc.status = doc.string_or("status", "ok");
  arc.golden_mean = golden->number_or("mean", 0.0);
  arc.golden_stddev = golden->number_or("stddev", 0.0);
  arc.golden_skewness = golden->number_or("skewness", 0.0);
  arc.em_iterations =
      static_cast<std::uint64_t>(em->number_or("iterations", 0.0));
  arc.em_log_likelihood = em->number_or("log_likelihood", 0.0);
  const JsonValue* converged = em->find("converged");
  arc.em_converged = converged != nullptr &&
                     converged->type == JsonValue::Type::kBool &&
                     converged->boolean;
  arc.degradation = em->string_or("degradation", "none");
  for (const auto& [name, row] : models->object) {
    if (!row.is_object()) return std::nullopt;
    ModelQor m;
    m.model = name;
    m.binning = row.number_or("binning", 0.0);
    m.yield_3sigma = row.number_or("yield_3sigma", 0.0);
    m.cdf_rmse = row.number_or("cdf_rmse", 0.0);
    m.x_binning = row.number_or("x_binning", 1.0);
    m.x_yield_3sigma = row.number_or("x_yield_3sigma", 1.0);
    m.x_cdf_rmse = row.number_or("x_cdf_rmse", 1.0);
    arc.models.push_back(std::move(m));
  }
  return arc;
}

void ManifestRecorder::add_arc(ArcQor arc) {
  std::lock_guard<std::mutex> lock(mutex_);
  arcs_.push_back(std::move(arc));
}

void ManifestRecorder::set_section_provider(
    std::string key, std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [k, fn] : sections_) {
    if (k == key) {
      fn = std::move(provider);
      return;
    }
  }
  sections_.emplace_back(std::move(key), std::move(provider));
}

void ManifestRecorder::clear_section_provider(std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(sections_, [&](const auto& s) { return s.first == key; });
}

void ManifestRecorder::add_endpoint(EndpointQor endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  endpoints_.push_back(std::move(endpoint));
}

std::string ManifestRecorder::to_json() const {
  // Snapshot the collaborators before taking our own lock (no nested
  // locking, no ordering constraints with the tracer / registry).
  const auto rollups = Tracer::instance().rollup();
  const std::string metrics = MetricsRegistry::instance().to_json();

  // Render provider sections outside the lock too: a provider may
  // take its own subsystem lock (e.g. the result cache), and holding
  // ours across that call would impose a lock order for no benefit.
  std::vector<std::pair<std::string, std::function<std::string()>>> providers;
  std::vector<std::pair<std::string, std::function<std::string()>>> config_fns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    providers = sections_;
    config_fns = config_providers_;
  }
  std::vector<std::pair<std::string, std::string>> sections;
  sections.reserve(providers.size());
  for (const auto& [key, fn] : providers) {
    if (fn) sections.emplace_back(key, fn());
  }
  // Provided config entries render after the session's own set_config
  // entries (a fixed position regardless of when during the session
  // the provider was registered, so repeated runs stay byte-stable),
  // and a plain set_config of the same key wins.
  std::vector<std::pair<std::string, std::string>> provided;
  provided.reserve(config_fns.size());
  for (const auto& [key, fn] : config_fns) {
    if (!fn) continue;
    std::string rendered;
    json_append_string(rendered, fn());
    provided.emplace_back(key, std::move(rendered));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"schema_version\":";
  out += std::to_string(kManifestSchemaVersion);
  out += ",\"tool\":\"lvf2\",\"config\":{";
  bool first_config = true;
  for (const auto& [key, rendered] : config_) {
    if (!first_config) out += ',';
    first_config = false;
    json_append_string(out, key);
    out += ':';
    out += rendered;
  }
  for (const auto& [key, rendered] : provided) {
    bool overridden = false;
    for (const auto& [k, v] : config_) {
      if (k == key) {
        overridden = true;
        break;
      }
    }
    if (overridden) continue;
    if (!first_config) out += ',';
    first_config = false;
    json_append_string(out, key);
    out += ':';
    out += rendered;
  }
  out += "},\"stages\":{";
  for (std::size_t i = 0; i < rollups.size(); ++i) {
    if (i > 0) out += ',';
    json_append_string(out, rollups[i].first);
    out += ":{\"count\":";
    out += std::to_string(rollups[i].second.count);
    out += ",\"wall_ms\":";
    json_append_number(out, rollups[i].second.wall_us * 1e-3);
    out += ",\"cpu_ms\":";
    json_append_number(out, rollups[i].second.cpu_us * 1e-3);
    out += '}';
  }
  out += "},\"metrics\":";
  out += metrics;
  out += ",\"arcs\":[";
  const std::vector<const ArcQor*> arcs = sorted_arcs(arcs_);
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (i > 0) out += ',';
    append_arc(out, *arcs[i]);
  }
  out += "],\"endpoints\":[";
  const std::vector<const EndpointQor*> endpoints =
      sorted_endpoints(endpoints_);
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    if (i > 0) out += ',';
    append_endpoint(out, *endpoints[i]);
  }
  out += ']';
  // Always present (one getrusage call): every manifest records peak
  // RSS and CPU split even when no profiler or telemetry is armed.
  // Like the provider sections below, it is nondeterministic and
  // excluded from lvf2_report diff unless opted in via --sections.
  out += ",\"resource\":";
  out += resource_section_json();
  for (const auto& [key, rendered] : sections) {
    out += ',';
    json_append_string(out, key);
    out += ':';
    out += rendered;
  }
  out += '}';
  return out;
}

}  // namespace lvf2::obs
