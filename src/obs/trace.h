#pragma once
// Scoped-span tracer emitting Chrome trace-event JSON (loadable in
// chrome://tracing or Perfetto). Recording is off unless the process
// starts with LVF2_TRACE=<path> (or a test calls Tracer::start()):
// the disabled path of a span or counter is a single relaxed atomic
// load, verified < 5 ns/call by BM_DisabledSpan in bench_perf.
//
// Event schema (one JSON object per event, ts/dur in microseconds
// since process start):
//   span     {"name":N,"cat":"lvf2","ph":"X","ts":T,"dur":D,
//             "pid":1,"tid":TID,"args":{...}}
//   counter  {"name":N,"ph":"C","ts":T,"pid":1,"tid":TID,
//             "args":{"value":V}}
// Events are buffered per process and flushed to the sink file in
// batches under a mutex (thread-safe, single writer).

#include <atomic>
#include <concepts>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/profile.h"
#include "obs/resource.h"

namespace lvf2::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True when a trace sink is open. Relaxed load: the only cost paid
/// by instrumented code when tracing is off.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// CPU time consumed by the calling thread, in microseconds
/// (CLOCK_THREAD_CPUTIME_ID; 0 where unavailable). Sampled by spans
/// so stage rollups can report wall and CPU side by side.
double thread_cpu_us();

/// Incremental builder for a span's "args" JSON object. Build one
/// only behind a trace_enabled() check (TraceSpan's lambda
/// constructor does this for you).
class ArgsBuilder {
 public:
  ArgsBuilder& add(std::string_view key, std::string_view value);
  template <std::integral T>
  ArgsBuilder& add(std::string_view key, T value) {
    return add_number(key, std::to_string(static_cast<long long>(value)));
  }
  template <std::floating_point T>
  ArgsBuilder& add(std::string_view key, T value) {
    return add_number(key, std::to_string(static_cast<double>(value)));
  }

  /// The finished object, e.g. `{"cell":"NAND2_X1","samples":10000}`.
  /// Consumes the builder.
  std::string str();

 private:
  ArgsBuilder& add_number(std::string_view key, std::string rendered);
  std::string body_;
};

/// Aggregated cost of one span name: call count plus total wall and
/// thread-CPU time. Exported into run manifests as stage rollups.
struct StageRollup {
  std::uint64_t count = 0;
  double wall_us = 0.0;
  double cpu_us = 0.0;
};

/// Process-wide trace sink.
class Tracer {
 public:
  /// The process singleton (leaked intentionally: observability must
  /// outlive every static consumer).
  static Tracer& instance();

  /// Opens the sink and enables recording. The stream goes to
  /// `path`.tmp and is renamed onto `path` by stop(), so a crashed
  /// run never leaves a truncated trace. No-op if already recording.
  void start(const std::string& path);
  /// Flushes buffered events, finalizes the sink file, disables
  /// recording (rollup aggregation, if enabled, stays on).
  void stop();
  /// Flushes buffered events to the sink without closing it.
  void flush();

  /// Enables span aggregation (name -> count / wall / CPU rollup)
  /// without requiring a sink file. Used by the manifest recorder;
  /// stays on for the rest of the process.
  void enable_rollup();
  /// Snapshot of the aggregated rollups, sorted by span name.
  std::vector<std::pair<std::string, StageRollup>> rollup();

  /// Microseconds since process start (steady clock).
  double now_us() const;

  /// Records a completed span ("ph":"X"). `args_json` is a rendered
  /// JSON object or empty; `cpu_dur_us` is the span's thread-CPU
  /// time (feeds the rollup, not the trace event).
  void complete_event(std::string_view name, double start_us, double dur_us,
                      double cpu_dur_us, std::string_view args_json);
  /// Records a counter sample ("ph":"C").
  void counter_event(std::string_view name, double value);

 private:
  Tracer();
  void append_locked(std::string event);
  void flush_locked();

  std::mutex mutex_;
  std::vector<std::string> buffer_;
  std::FILE* sink_ = nullptr;
  std::string final_path_;
  std::string tmp_path_;
  bool wrote_any_ = false;
  bool rollup_enabled_ = false;
  std::map<std::string, StageRollup, std::less<>> rollup_;
  double base_ns_ = 0.0;
};

/// Emits a counter sample when tracing is enabled; a relaxed atomic
/// load otherwise.
inline void trace_counter(std::string_view name, double value) {
  if (!trace_enabled()) return;
  Tracer::instance().counter_event(name, value);
}

/// RAII scoped span: records a complete event covering its lifetime.
/// The name (and optional args callback) are only materialized when
/// tracing is enabled. When the sampling profiler is on, the span
/// additionally tags its thread with the span name so hot stacks are
/// attributed to a stage; when allocation accounting is on, the
/// span's allocation delta feeds the per-stage resource rollup.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) {
    if (prof::profiler_enabled()) tag_stage(name);
    if (!trace_enabled()) return;
    open(name);
  }

  /// `args_fn` is invoked (only when tracing is enabled) to build the
  /// span's args; it must return a rendered JSON object string, e.g.
  /// via ArgsBuilder.
  template <typename F>
    requires std::is_invocable_r_v<std::string, F>
  TraceSpan(std::string_view name, F&& args_fn) {
    if (prof::profiler_enabled()) tag_stage(name);
    if (!trace_enabled()) return;
    open(name);
    args_ = std::forward<F>(args_fn)();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (staged_) prof::pop_stage();
    if (!active_) return;
    if (alloc_tracked_) {
      const AllocSnapshot now = thread_alloc_totals();
      record_stage_alloc(name_, now.count - alloc_start_.count,
                         now.bytes - alloc_start_.bytes);
    }
    Tracer& t = Tracer::instance();
    t.complete_event(name_, start_us_, t.now_us() - start_us_,
                     thread_cpu_us() - start_cpu_us_, args_);
  }

 private:
  void tag_stage(std::string_view name) {
    prof::push_stage(name);
    staged_ = true;
  }

  void open(std::string_view name) {
    active_ = true;
    name_.assign(name);
    start_us_ = Tracer::instance().now_us();
    start_cpu_us_ = thread_cpu_us();
    if (alloc_stats_enabled()) {
      alloc_tracked_ = true;
      alloc_start_ = thread_alloc_totals();
    }
  }

  bool active_ = false;
  bool staged_ = false;
  bool alloc_tracked_ = false;
  double start_us_ = 0.0;
  double start_cpu_us_ = 0.0;
  AllocSnapshot alloc_start_;
  std::string name_;
  std::string args_;
};

}  // namespace lvf2::obs
