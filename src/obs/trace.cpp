#include "obs/trace.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <thread>

namespace lvf2::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

constexpr std::size_t kFlushThreshold = 8192;

double steady_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t current_tid() {
  return static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7fffffff);
}

// Minimal JSON string escaping: quote, backslash, and control chars.
void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Fixed-point rendering of a timestamp (microseconds).
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

// General value rendering; non-finite values are not valid JSON and
// degrade to null.
void append_value(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

// Reads LVF2_TRACE at static-initialization time so tracing covers
// main() end to end without any opt-in from the program itself.
struct TraceEnvInit {
  TraceEnvInit() {
    if (const char* path = std::getenv("LVF2_TRACE")) {
      if (path[0] != '\0') Tracer::instance().start(path);
    }
  }
} g_trace_env_init;

}  // namespace

double thread_cpu_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e6 +
           static_cast<double>(ts.tv_nsec) * 1e-3;
  }
#endif
  return 0.0;
}

ArgsBuilder& ArgsBuilder::add(std::string_view key, std::string_view value) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  append_escaped(body_, key);
  body_ += "\":\"";
  append_escaped(body_, value);
  body_ += '"';
  return *this;
}

ArgsBuilder& ArgsBuilder::add_number(std::string_view key,
                                     std::string rendered) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  append_escaped(body_, key);
  body_ += "\":";
  body_ += rendered;
  return *this;
}

std::string ArgsBuilder::str() {
  return "{" + std::move(body_) + "}";
}

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // leaked: see header
  return *tracer;
}

Tracer::Tracer() : base_ns_(steady_ns()) {}

double Tracer::now_us() const { return (steady_ns() - base_ns_) * 1e-3; }

void Tracer::start(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_ != nullptr) return;
  // Stream into <path>.tmp; stop() renames it onto <path>, so a
  // crashed or fault-injected run never leaves a truncated trace.
  final_path_ = path;
  tmp_path_ = path + ".tmp";
  sink_ = std::fopen(tmp_path_.c_str(), "w");
  if (sink_ == nullptr) {
    std::fprintf(stderr, "lvf2-obs: cannot open trace sink %s\n",
                 path.c_str());
    return;
  }
  std::fputs("{\"traceEvents\":[", sink_);
  wrote_any_ = false;
  buffer_.reserve(kFlushThreshold);
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit([] { Tracer::instance().stop(); });
  }
}

void Tracer::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Spans keep recording if rollup aggregation is on (manifest mode).
  detail::g_trace_enabled.store(rollup_enabled_, std::memory_order_relaxed);
  if (sink_ == nullptr) return;
  flush_locked();
  std::fputs("]}\n", sink_);
  std::fclose(sink_);
  sink_ = nullptr;
  if (std::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    std::fprintf(stderr, "lvf2-obs: cannot finalize trace sink %s\n",
                 final_path_.c_str());
    std::remove(tmp_path_.c_str());
  }
}

void Tracer::enable_rollup() {
  std::lock_guard<std::mutex> lock(mutex_);
  rollup_enabled_ = true;
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, StageRollup>> Tracer::rollup() {
  std::lock_guard<std::mutex> lock(mutex_);
  return {rollup_.begin(), rollup_.end()};
}

void Tracer::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  flush_locked();
  if (sink_ != nullptr) std::fflush(sink_);
}

void Tracer::flush_locked() {
  if (sink_ == nullptr) {
    buffer_.clear();
    return;
  }
  for (const std::string& event : buffer_) {
    if (wrote_any_) std::fputc(',', sink_);
    std::fputs(event.c_str(), sink_);
    wrote_any_ = true;
  }
  buffer_.clear();
}

void Tracer::append_locked(std::string event) {
  buffer_.push_back(std::move(event));
  if (buffer_.size() >= kFlushThreshold) flush_locked();
}

void Tracer::complete_event(std::string_view name, double start_us,
                            double dur_us, double cpu_dur_us,
                            std::string_view args_json) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (rollup_enabled_) {
    auto it = rollup_.find(name);
    if (it == rollup_.end()) {
      it = rollup_.try_emplace(std::string(name)).first;
    }
    it->second.count += 1;
    it->second.wall_us += dur_us;
    it->second.cpu_us += (cpu_dur_us > 0.0) ? cpu_dur_us : 0.0;
  }
  // In rollup-only mode (manifest without LVF2_TRACE) spans cost the
  // aggregation update above and no string work.
  if (sink_ == nullptr) return;
  std::string e;
  e.reserve(96 + name.size() + args_json.size());
  e += "{\"name\":\"";
  append_escaped(e, name);
  e += "\",\"cat\":\"lvf2\",\"ph\":\"X\",\"ts\":";
  append_double(e, start_us);
  e += ",\"dur\":";
  append_double(e, dur_us);
  e += ",\"pid\":1,\"tid\":";
  e += std::to_string(current_tid());
  if (!args_json.empty()) {
    e += ",\"args\":";
    e += args_json;
  }
  e += '}';
  append_locked(std::move(e));
}

void Tracer::counter_event(std::string_view name, double value) {
  std::string e;
  e.reserve(80 + name.size());
  e += "{\"name\":\"";
  append_escaped(e, name);
  e += "\",\"ph\":\"C\",\"ts\":";
  append_double(e, now_us());
  e += ",\"pid\":1,\"tid\":";
  e += std::to_string(current_tid());
  e += ",\"args\":{\"value\":";
  append_value(e, value);
  e += "}}";
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_ == nullptr) return;  // rollup-only mode: counters no-op
  append_locked(std::move(e));
}

}  // namespace lvf2::obs
