#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lvf2::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->type == Type::kNumber) ? v->number : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->type == Type::kString) ? v->string
                                                    : std::string(fallback);
}

void json_append_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void json_append_number(std::string& out, double v) {
  json_append_number(out, v, 9);
}

void json_append_number(std::string& out, double v, int precision) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  out += buf;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v = parse_value();
    skip_ws();
    if (ok_ && pos_ != text_.size()) fail("trailing characters");
    if (!ok_) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (ok_) {
      error_ = what + " at offset " + std::to_string(pos_);
      ok_ = false;
    }
    pos_ = text_.size();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return '\0';
    }
    return text_[pos_];
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    if (!ok_) return v;
    const char c = peek();
    if (c == '{') {
      v.type = JsonValue::Type::kObject;
      ++pos_;
      if (consume('}')) return v;
      do {
        skip_ws();
        if (peek() != '"') {
          fail("expected object key");
          return v;
        }
        std::string key = parse_string();
        if (!consume(':')) {
          fail("expected ':'");
          return v;
        }
        v.object.emplace_back(std::move(key), parse_value());
      } while (consume(','));
      if (!consume('}')) fail("expected '}'");
    } else if (c == '[') {
      v.type = JsonValue::Type::kArray;
      ++pos_;
      if (consume(']')) return v;
      do {
        v.array.push_back(parse_value());
      } while (consume(','));
      if (!consume(']')) fail("expected ']'");
    } else if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.string = parse_string();
    } else if (c == 't' || c == 'f') {
      v.type = JsonValue::Type::kBool;
      const std::string_view word = (c == 't') ? "true" : "false";
      if (text_.substr(pos_, word.size()) != word) {
        fail("bad literal");
      } else {
        pos_ += word.size();
        v.boolean = (c == 't');
      }
    } else if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") {
        fail("bad literal");
      } else {
        pos_ += 4;
      }
    } else if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      v.type = JsonValue::Type::kNumber;
      v.number = parse_number();
    } else {
      fail("unexpected character");
    }
    return v;
  }

  std::string parse_string() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'r': out += '\r'; break;
          case '/': out += '/'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("bad \\u escape");
              return out;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return out;
              }
            }
            pos_ += 4;
            // The sinks only escape control characters, so a BMP
            // code point to UTF-8 suffices here.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
            return out;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected number");
      return 0.0;
    }
    return std::atof(std::string(text_.substr(start, pos_ - start)).c_str());
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error) {
  return Parser(text).run(error);
}

void json_write(const JsonValue& value, std::string& out,
                const JsonWriteOptions& options) {
  switch (value.type) {
    case JsonValue::Type::kNull:
      out += "null";
      break;
    case JsonValue::Type::kBool:
      out += value.boolean ? "true" : "false";
      break;
    case JsonValue::Type::kNumber:
      json_append_number(out, value.number, options.double_precision);
      break;
    case JsonValue::Type::kString:
      json_append_string(out, value.string);
      break;
    case JsonValue::Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        if (i > 0) out += ',';
        json_write(value.array[i], out, options);
      }
      out += ']';
      break;
    }
    case JsonValue::Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < value.object.size(); ++i) {
        if (i > 0) out += ',';
        json_append_string(out, value.object[i].first);
        out += ':';
        json_write(value.object[i].second, out, options);
      }
      out += '}';
      break;
    }
  }
}

void json_write(const JsonValue& value, std::string& out) {
  json_write(value, out, JsonWriteOptions{});
}

std::string json_write(const JsonValue& value) {
  std::string out;
  json_write(value, out);
  return out;
}

std::string json_write(const JsonValue& value, const JsonWriteOptions& options) {
  std::string out;
  json_write(value, out, options);
  return out;
}

}  // namespace lvf2::obs
