#pragma once
// Resource accountant: process-wide peak RSS and getrusage deltas,
// recorded into every run manifest as a `resource` section (one
// syscall at serialization time — always on), plus optional
// operator-new allocation counters (LVF2_ALLOC_STATS=1) that the
// tracer rolls up per stage so allocation pressure is attributed to
// characterize/EM/MC/SSTA the same way wall time is.
//
// Disabled-path contract: with LVF2_ALLOC_STATS unset every global
// operator new pays one relaxed atomic load on top of malloc; the
// per-stage rollup hook in TraceSpan is the same single load.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace lvf2::obs {

namespace detail {
extern std::atomic<bool> g_alloc_stats_enabled;
}  // namespace detail

/// True when operator-new accounting is on (LVF2_ALLOC_STATS=1 or
/// set_alloc_stats). Relaxed load: the only cost paid per allocation
/// when accounting is off.
inline bool alloc_stats_enabled() {
  return detail::g_alloc_stats_enabled.load(std::memory_order_relaxed);
}

/// Runtime override (tests). Counters keep their totals across
/// off/on transitions.
void set_alloc_stats(bool enabled);

/// Point-in-time allocation totals. Process totals aggregate relaxed
/// atomics; thread totals read the calling thread's counters (used by
/// TraceSpan to delta a stage without synchronization).
struct AllocSnapshot {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};
AllocSnapshot process_alloc_totals();
AllocSnapshot thread_alloc_totals();

/// Accumulates one stage's allocation delta into the per-stage rollup
/// (mutex-guarded map; call only when alloc_stats_enabled()).
void record_stage_alloc(std::string_view stage, std::uint64_t count,
                        std::uint64_t bytes);

/// getrusage(RUSAGE_SELF) snapshot in portable units. peak_rss_kb is
/// ru_maxrss normalized to kilobytes.
struct ResourceUsage {
  std::uint64_t peak_rss_kb = 0;
  double utime_s = 0.0;   ///< user CPU
  double stime_s = 0.0;   ///< system CPU
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t voluntary_ctx_switches = 0;
  std::uint64_t involuntary_ctx_switches = 0;
};
ResourceUsage resource_usage();

/// The manifest `resource` section, rendered: process rusage, the
/// allocation totals (when accounting is on), and the per-stage
/// allocation rollup. Called by ManifestRecorder::to_json() on every
/// armed run — peak RSS lands in every manifest.
std::string resource_section_json();

}  // namespace lvf2::obs
