#pragma once
// Sampling wall-clock profiler: a POSIX interval timer (SIGALRM)
// broadcasts a sample signal (SIGPROF) to every registered thread;
// each thread's handler captures its own backtrace() plus the active
// trace-span stage into a preallocated per-thread buffer. Buffers are
// drained at stop()/exit into a flamegraph-compatible folded-stack
// file: one line per unique (stage, stack), root frame first,
//
//   characterize.entry;run_monte_carlo(...);simulate_stage(...) 42
//
// loadable directly by flamegraph.pl / speedscope / inferno, and
// summarized by `lvf2_report flame`.
//
// Enabled by LVF2_PROFILE=<path>[,hz=N] at startup (default 97 Hz —
// prime, so sampling cannot phase-lock with periodic work), or by
// Profiler::start() from tests. Disabled-path contract: a hook site
// (TraceSpan stage tagging, pool telemetry) costs one relaxed atomic
// load — BM_DisabledProfilerSample in bench_perf, same budget as a
// disabled span (< 5 ns).
//
// Sampling is cooperative per thread: the main thread registers at
// start(), exec::Pool workers register for their lifetime. Threads
// that never register are simply never sampled.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lvf2::obs::prof {

namespace detail {
extern std::atomic<bool> g_profiler_enabled;
}  // namespace detail

/// True while the profiler is sampling. Relaxed load: the only cost
/// paid by hook sites when LVF2_PROFILE is unset.
inline bool profiler_enabled() {
  return detail::g_profiler_enabled.load(std::memory_order_relaxed);
}

/// Parsed LVF2_PROFILE specification.
struct ProfileOptions {
  std::string path;  ///< folded-stack output file
  int hz = 97;       ///< sampling frequency (clamped to [1, 1000])
};

/// Parses "path[,hz=N]". Returns nullopt (with a one-line description
/// in `error`) on an empty path or unparsable hz. Exposed for tests.
std::optional<ProfileOptions> parse_profile_spec(const char* spec,
                                                 std::string* error = nullptr);

/// Tags the calling thread with the innermost active stage (span
/// name); samples taken while the tag is live are attributed to it.
/// Cheap (a bounded string copy into a thread-local slot) but not
/// free: call only behind a profiler_enabled() check — TraceSpan does
/// this for every span automatically. Nesting deeper than the slot
/// budget keeps the deepest tagged stage.
void push_stage(std::string_view name);
void pop_stage();

/// The calling thread's innermost stage tag ("" when none): test
/// support for the tagging machinery.
std::string current_stage();

/// Registers the calling thread for sampling until the matching
/// unregister (RAII: ThreadRegistration). Safe to call when the
/// profiler is off — the slot simply stays idle until a session
/// starts. exec::Pool workers hold one for their lifetime.
void register_current_thread();
void unregister_current_thread();

struct ThreadRegistration {
  ThreadRegistration() { register_current_thread(); }
  ~ThreadRegistration() { unregister_current_thread(); }
  ThreadRegistration(const ThreadRegistration&) = delete;
  ThreadRegistration& operator=(const ThreadRegistration&) = delete;
};

/// Aggregation of raw samples into folded stacks. Pure data structure
/// (no signals, no symbols) so tests can drive it with synthetic
/// frames; the profiler feeds it at drain time, never from a handler.
class FoldedProfile {
 public:
  /// Merges one sample: `frames` are innermost-first return addresses
  /// (as delivered by backtrace()), `stage` the span tag ("" becomes
  /// "(untagged)").
  void add(std::string_view stage, const void* const* frames,
           std::size_t frame_count, std::uint64_t count = 1);

  /// Renders the folded file: "stage;outer;...;inner count" lines,
  /// sorted by key for run-to-run stability. `symbolizer` maps a
  /// return address to a frame label.
  std::string render(
      const std::function<std::string(const void*)>& symbolizer) const;

  std::uint64_t total_samples() const { return total_; }
  std::size_t distinct_stacks() const { return stacks_.size(); }

 private:
  struct Key {
    std::string stage;
    std::vector<const void*> frames;  ///< innermost first
    bool operator<(const Key& other) const {
      if (stage != other.stage) return stage < other.stage;
      return frames < other.frames;
    }
  };
  std::map<Key, std::uint64_t> stacks_;
  std::uint64_t total_ = 0;
};

/// Best-effort address -> "function+0x<off>" label via dladdr (with
/// demangling); falls back to the containing module or a hex address.
/// The default symbolizer of Profiler::stop().
std::string symbolize_address(const void* addr);

/// Counters of one profiling session, exported into the manifest
/// `profile` section and the metrics registry.
struct ProfileStats {
  std::uint64_t samples = 0;  ///< captured across all threads
  std::uint64_t dropped = 0;  ///< lost to full per-thread buffers
  std::uint64_t threads = 0;  ///< thread buffers that saw samples
};

/// The process-wide profiler (leaked singleton, one session at a
/// time). start()/stop() are thread-safe; the signal handlers never
/// allocate, lock, or touch anything outside the preallocated
/// per-thread buffers.
class Profiler {
 public:
  static Profiler& instance();

  /// Arms the signal handlers, allocates sample buffers for every
  /// registered thread (registering the calling thread first), and
  /// starts the interval timer. Returns false (with a stderr warning)
  /// when a session is already running or the timer cannot start.
  bool start(const ProfileOptions& options);

  /// Stops the timer, drains every thread buffer into a FoldedProfile
  /// and writes the folded file atomically. No-op when not running.
  void stop();

  bool running() const;
  /// Live counters of the current (or last) session.
  ProfileStats stats() const;
  /// The folded output of stop(), kept for tests (empty before the
  /// first stop()).
  const std::string& last_output_path() const { return last_path_; }

 private:
  Profiler() = default;
  std::string last_path_;
};

}  // namespace lvf2::obs::prof
