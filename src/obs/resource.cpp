#include "obs/resource.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <vector>

#include "obs/json.h"

#if __has_include(<sys/resource.h>) && !defined(_WIN32)
#define LVF2_RUSAGE_SUPPORTED 1
#include <sys/resource.h>
#else
#define LVF2_RUSAGE_SUPPORTED 0
#endif

// This TU both replaces the global allocation operators (malloc/free
// backed) and allocates through them; GCC flags that pairing as a
// mismatched new/delete even though malloc-backed new + free is
// exactly the contract here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace lvf2::obs {

namespace detail {
std::atomic<bool> g_alloc_stats_enabled{false};
}  // namespace detail

namespace {

// Process totals are relaxed atomics (hot: every operator new when
// accounting is on); thread totals are plain thread-locals so a
// TraceSpan can delta a stage with two loads and no contention.
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
thread_local std::uint64_t t_alloc_count = 0;
thread_local std::uint64_t t_alloc_bytes = 0;

struct StageAlloc {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};
std::mutex g_stage_mutex;
// Pointer (leaked) so the rollup survives static destruction of this
// TU: spans may still close while exit-time sinks serialize.
std::map<std::string, StageAlloc, std::less<>>* stage_rollup() {
  static auto* rollup = new std::map<std::string, StageAlloc, std::less<>>();
  return rollup;
}

struct AllocStatsEnvInit {
  AllocStatsEnvInit() {
    if (const char* v = std::getenv("LVF2_ALLOC_STATS")) {
      if (v[0] != '\0' && v[0] != '0') set_alloc_stats(true);
    }
  }
} g_alloc_stats_env_init;

inline void count_allocation(std::size_t size) {
  if (!alloc_stats_enabled()) return;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  ++t_alloc_count;
  t_alloc_bytes += size;
}

}  // namespace

void set_alloc_stats(bool enabled) {
  detail::g_alloc_stats_enabled.store(enabled, std::memory_order_relaxed);
}

AllocSnapshot process_alloc_totals() {
  return {g_alloc_count.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed)};
}

AllocSnapshot thread_alloc_totals() {
  return {t_alloc_count, t_alloc_bytes};
}

void record_stage_alloc(std::string_view stage, std::uint64_t count,
                        std::uint64_t bytes) {
  if (count == 0 && bytes == 0) return;
  std::lock_guard<std::mutex> lock(g_stage_mutex);
  auto* rollup = stage_rollup();
  auto it = rollup->find(stage);
  if (it == rollup->end()) {
    it = rollup->try_emplace(std::string(stage)).first;
  }
  it->second.count += count;
  it->second.bytes += bytes;
}

ResourceUsage resource_usage() {
  ResourceUsage usage;
#if LVF2_RUSAGE_SUPPORTED
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    usage.peak_rss_kb = static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;
#else
    usage.peak_rss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
#endif
    usage.utime_s = static_cast<double>(ru.ru_utime.tv_sec) +
                    static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    usage.stime_s = static_cast<double>(ru.ru_stime.tv_sec) +
                    static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
    usage.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
    usage.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
    usage.voluntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nvcsw);
    usage.involuntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nivcsw);
  }
#endif
  return usage;
}

std::string resource_section_json() {
  const ResourceUsage usage = resource_usage();
  std::string out = "{\"peak_rss_kb\":";
  out += std::to_string(usage.peak_rss_kb);
  out += ",\"utime_s\":";
  json_append_number(out, usage.utime_s);
  out += ",\"stime_s\":";
  json_append_number(out, usage.stime_s);
  out += ",\"minor_faults\":" + std::to_string(usage.minor_faults);
  out += ",\"major_faults\":" + std::to_string(usage.major_faults);
  out += ",\"voluntary_ctx_switches\":" +
         std::to_string(usage.voluntary_ctx_switches);
  out += ",\"involuntary_ctx_switches\":" +
         std::to_string(usage.involuntary_ctx_switches);
  out += ",\"alloc\":{\"enabled\":";
  out += alloc_stats_enabled() ? "true" : "false";
  const AllocSnapshot totals = process_alloc_totals();
  out += ",\"count\":" + std::to_string(totals.count);
  out += ",\"bytes\":" + std::to_string(totals.bytes);
  out += "},\"stages\":{";
  {
    std::lock_guard<std::mutex> lock(g_stage_mutex);
    bool first = true;
    for (const auto& [stage, alloc] : *stage_rollup()) {
      if (!first) out += ',';
      first = false;
      json_append_string(out, stage);
      out += ":{\"alloc_count\":" + std::to_string(alloc.count);
      out += ",\"alloc_bytes\":" + std::to_string(alloc.bytes);
      out += '}';
    }
  }
  out += "}}";
  return out;
}

}  // namespace lvf2::obs

// Global allocation hooks. Replacing operator new/delete is the one
// portable interposition point that needs no linker tricks; with
// accounting off each call is a relaxed load plus the malloc it
// would have done anyway. delete stays uncounted: free-side
// attribution would need per-pointer size tracking, which is exactly
// the overhead a sampling-oriented accountant avoids.
void* operator new(std::size_t size) {
  lvf2::obs::count_allocation(size);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  lvf2::obs::count_allocation(size);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void* operator new(std::size_t size, std::align_val_t align) {
  lvf2::obs::count_allocation(size);
  const std::size_t alignment = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(alignment,
                                   (size + alignment - 1) / alignment *
                                       alignment)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
