#pragma once
// Process-wide metrics registry: named counters, gauges, fixed-bucket
// histograms, and streaming quantile digests. Instruments are created
// on first access and live for the whole process (stable addresses —
// cache a reference in hot paths). Counter/gauge/histogram updates
// are lock-free relaxed atomics; a digest observation takes the
// instrument's own mutex (an uncontended lock + a buffered push,
// still nanoseconds); only name lookup takes the registry mutex.
//
// Sinks, both driven by environment variables read at startup:
//   LVF2_METRICS=<path>     JSON dump at process exit
//   LVF2_METRICS_SUMMARY=1  plain-text summary to stderr at exit
// With neither set, the registry still counts (a relaxed fetch_add)
// but emits nothing.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/tdigest.h"

namespace lvf2::obs {

namespace detail {
/// Relaxed atomic accumulation into a double via a CAS retry loop.
/// std::atomic<double>::fetch_add exists only since C++20 and is
/// still missing/miscompiled on some toolchains; the CAS loop is
/// portable, lock-free wherever atomic<double> is, and exact under
/// concurrency (every addend is applied exactly once).
inline void atomic_add(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + v,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Monotonically increasing double accumulator (seconds of work,
/// nanoseconds of delay, ...). Thread-safe via the CAS add loop.
class DoubleCounter {
 public:
  void add(double v) { detail::atomic_add(value_, v); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// finite buckets; one overflow bucket is appended implicitly.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Streaming quantile instrument: a mutex-guarded mergeable t-digest
/// (obs/tdigest.h). Built for latency tails — p99/p999 stay sharp
/// wherever the distribution lands, unlike a fixed bucket ladder.
class Digest {
 public:
  explicit Digest(double compression = 100.0) : digest_(compression) {}

  void observe(double v) {
    std::lock_guard<std::mutex> lock(mutex_);
    digest_.add(v);
  }
  /// Consistent point-in-time copy (merge it, serialize it, query it).
  TDigest snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    digest_.compress();
    return digest_;
  }
  double quantile(double q) const { return snapshot().quantile(q); }
  std::uint64_t count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::uint64_t>(digest_.count());
  }

 private:
  mutable std::mutex mutex_;
  TDigest digest_;
};

/// The process-wide registry (leaked singleton, never destroyed).
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  DoubleCounter& double_counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First call fixes the bucket bounds; later calls with the same
  /// name return the existing histogram regardless of `bounds`.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  /// First call fixes the compression; later calls with the same name
  /// return the existing digest regardless of `compression`.
  Digest& digest(std::string_view name, double compression = 100.0);

  /// Full registry state as a JSON object
  /// {"counters":{...},"gauges":{...},"histograms":{...},
  ///  "digests":{...}} (each digest carries its serialized centroid
  /// state plus a "q" block of p50/p90/p95/p99/p999 estimates).
  std::string to_json() const;
  /// Prometheus text exposition (version 0.0.4): counters as
  /// `<prefix><name>_total`, gauges plain, histograms as cumulative
  /// `_bucket{le=...}` + `_sum`/`_count`, digests as
  /// `{quantile=...}` summaries + `_sum`/`_count`. Metric names are
  /// the registry names with non-[a-zA-Z0-9_] flattened to '_'.
  std::string to_prometheus(std::string_view prefix = "lvf2_") const;
  /// Writes to_json() to `path` (best-effort; logs to stderr on
  /// failure).
  void write_json(const std::string& path) const;
  /// Human-readable summary, one instrument per line.
  void write_text(std::FILE* out) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, DoubleCounter, std::less<>> double_counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, Digest, std::less<>> digests_;
};

/// Convenience accessors against the process registry.
inline Counter& counter(std::string_view name) {
  return MetricsRegistry::instance().counter(name);
}
inline DoubleCounter& double_counter(std::string_view name) {
  return MetricsRegistry::instance().double_counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return MetricsRegistry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name,
                            std::vector<double> bounds) {
  return MetricsRegistry::instance().histogram(name, std::move(bounds));
}
inline Digest& digest(std::string_view name, double compression = 100.0) {
  return MetricsRegistry::instance().digest(name, compression);
}

}  // namespace lvf2::obs
