#include "obs/log.h"

#include <chrono>
#include <cstdlib>
#include <mutex>

namespace lvf2::obs {

namespace detail {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kOff)};
}  // namespace detail

namespace {

std::mutex g_log_mutex;
std::FILE* g_log_stream = nullptr;  // nullptr -> stderr

const std::chrono::steady_clock::time_point g_log_epoch =
    std::chrono::steady_clock::now();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      break;
  }
  return "off";
}

bool needs_quoting(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' ||
        static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

struct LogEnvInit {
  LogEnvInit() {
    if (const char* level = std::getenv("LVF2_LOG")) {
      set_log_level(parse_log_level(level));
    }
  }
} g_log_env_init;

}  // namespace

void set_log_level(LogLevel level) {
  detail::g_log_level.store(static_cast<int>(level),
                            std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

void set_log_stream(std::FILE* stream) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_log_stream = stream;
}

void log(LogLevel level, std::string_view event,
         std::initializer_list<LogField> fields) {
  if (!log_enabled(level)) return;
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_log_epoch)
          .count();
  std::string line;
  line.reserve(64 + event.size());
  char head[48];
  std::snprintf(head, sizeof(head), "[lvf2 %.3fs %s] ", elapsed_s,
                level_name(level));
  line += head;
  line.append(event);
  for (const LogField& f : fields) {
    line += ' ';
    line.append(f.key);
    line += '=';
    if (f.quoted && needs_quoting(f.value)) {
      line += '"';
      for (char c : f.value) {
        if (c == '"' || c == '\\') line += '\\';
        line += c;
      }
      line += '"';
    } else {
      line += f.value;
    }
  }
  line += '\n';
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::FILE* out = (g_log_stream != nullptr) ? g_log_stream : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

}  // namespace lvf2::obs
