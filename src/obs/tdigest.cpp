#include "obs/tdigest.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lvf2::obs {

namespace {

constexpr double kPi = 3.14159265358979323846;

// The canonical t-digest scale function k1: centroids near the tails
// (q -> 0 or 1) are kept small, centroids near the median may grow.
double k_scale(double q, double compression) {
  q = std::min(1.0, std::max(0.0, q));
  return compression / (2.0 * kPi) * std::asin(2.0 * q - 1.0);
}

double k_inverse(double k, double compression) {
  const double s = std::sin(k * 2.0 * kPi / compression);
  return (s + 1.0) / 2.0;
}

}  // namespace

TDigest::TDigest(double compression)
    : compression_(compression < 10.0 ? 10.0 : compression),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void TDigest::add(double x, double w) {
  if (!std::isfinite(x) || !(w > 0.0)) return;
  buffer_.push_back({x, w});
  count_ += w;
  sum_ += x * w;
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
  if (buffer_.size() >=
      kBufferFactor * static_cast<std::size_t>(compression_)) {
    merge_buffer();
  }
}

void TDigest::merge(const TDigest& other) {
  // Fold the operand's full state (compacted and pending) into our
  // buffer; one compress pass rebuilds the combined sketch. The
  // operand order is part of the deterministic input sequence.
  for (const Centroid& c : other.centroids_) {
    if (c.weight > 0.0) buffer_.push_back(c);
  }
  for (const Centroid& c : other.buffer_) {
    if (c.weight > 0.0) buffer_.push_back(c);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  merge_buffer();
}

void TDigest::merge_buffer() const {
  if (buffer_.empty()) return;
  // Stable sort keyed on (mean, weight): equal points cannot be
  // reordered by sort nondeterminism, so the pass below is a pure
  // function of the accumulated multiset + arrival order.
  std::stable_sort(buffer_.begin(), buffer_.end(),
                   [](const Centroid& a, const Centroid& b) {
                     if (a.mean != b.mean) return a.mean < b.mean;
                     return a.weight < b.weight;
                   });
  std::vector<Centroid> merged;
  merged.reserve(centroids_.size() + buffer_.size());
  std::merge(centroids_.begin(), centroids_.end(), buffer_.begin(),
             buffer_.end(), std::back_inserter(merged),
             [](const Centroid& a, const Centroid& b) {
               if (a.mean != b.mean) return a.mean < b.mean;
               return a.weight < b.weight;
             });
  buffer_.clear();

  const double total = count_;
  std::vector<Centroid> out;
  out.reserve(static_cast<std::size_t>(2.0 * compression_) + 8);
  Centroid cur = merged.front();
  double emitted = 0.0;  // weight already committed to `out`
  double q_limit = k_inverse(k_scale(0.0, compression_) + 1.0, compression_);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const Centroid& next = merged[i];
    const double projected = (emitted + cur.weight + next.weight) / total;
    if (projected <= q_limit) {
      // Weighted mean update; weights are positive by construction.
      cur.mean = (cur.mean * cur.weight + next.mean * next.weight) /
                 (cur.weight + next.weight);
      cur.weight += next.weight;
    } else {
      out.push_back(cur);
      emitted += cur.weight;
      q_limit = k_inverse(k_scale(emitted / total, compression_) + 1.0,
                          compression_);
      cur = next;
    }
  }
  out.push_back(cur);
  centroids_ = std::move(out);
}

void TDigest::compress() const { merge_buffer(); }

const std::vector<Centroid>& TDigest::centroids() const {
  merge_buffer();
  return centroids_;
}

double TDigest::quantile(double q) const {
  if (count_ <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  merge_buffer();
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  if (centroids_.size() == 1) return centroids_.front().mean;

  // Piecewise-linear CDF through the centroid midpoints, anchored at
  // the exact min and max.
  const double target = q * count_;
  double prev_mean = min_;
  double prev_cum = 0.0;
  double cum = 0.0;
  for (const Centroid& c : centroids_) {
    const double mid = cum + c.weight / 2.0;
    if (target < mid) {
      const double span = mid - prev_cum;
      const double frac = span > 0.0 ? (target - prev_cum) / span : 0.0;
      return prev_mean + frac * (c.mean - prev_mean);
    }
    prev_mean = c.mean;
    prev_cum = mid;
    cum += c.weight;
  }
  const double span = count_ - prev_cum;
  const double frac = span > 0.0 ? (target - prev_cum) / span : 1.0;
  return prev_mean + frac * (max_ - prev_mean);
}

JsonValue TDigest::to_json() const {
  merge_buffer();
  JsonValue out;
  out.type = JsonValue::Type::kObject;
  const auto number = [](double v) {
    JsonValue j;
    j.type = JsonValue::Type::kNumber;
    j.number = v;
    return j;
  };
  out.object.emplace_back("compression", number(compression_));
  out.object.emplace_back("count", number(count_));
  out.object.emplace_back("sum", number(sum_));
  out.object.emplace_back("min", number(count_ > 0.0 ? min_ : 0.0));
  out.object.emplace_back("max", number(count_ > 0.0 ? max_ : 0.0));
  JsonValue centroids;
  centroids.type = JsonValue::Type::kArray;
  for (const Centroid& c : centroids_) {
    JsonValue pair;
    pair.type = JsonValue::Type::kArray;
    pair.array.push_back(number(c.mean));
    pair.array.push_back(number(c.weight));
    centroids.array.push_back(std::move(pair));
  }
  out.object.emplace_back("centroids", std::move(centroids));
  return out;
}

std::string TDigest::to_json_text() const {
  return json_write(to_json(), JsonWriteOptions{17});
}

std::optional<TDigest> TDigest::from_json(const JsonValue& doc) {
  if (!doc.is_object()) return std::nullopt;
  const JsonValue* centroids = doc.find("centroids");
  if (centroids == nullptr || !centroids->is_array()) return std::nullopt;
  TDigest digest(doc.number_or("compression", 100.0));
  for (const JsonValue& pair : centroids->array) {
    if (!pair.is_array() || pair.array.size() != 2) return std::nullopt;
    digest.centroids_.push_back(
        {pair.array[0].number, pair.array[1].number});
  }
  digest.count_ = doc.number_or("count", 0.0);
  digest.sum_ = doc.number_or("sum", 0.0);
  if (digest.count_ > 0.0) {
    digest.min_ = doc.number_or("min", 0.0);
    digest.max_ = doc.number_or("max", 0.0);
  }
  return digest;
}

}  // namespace lvf2::obs
