#include "obs/metrics.h"

#include <cmath>
#include <cstdlib>

#include "obs/manifest.h"

namespace lvf2::obs {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

// Registers the exit-time sinks when the metrics env vars are set.
struct MetricsEnvInit {
  MetricsEnvInit() {
    const char* path = std::getenv("LVF2_METRICS");
    if (path != nullptr && path[0] != '\0') {
      static std::string sink_path;
      sink_path = path;
      std::atexit(
          [] { MetricsRegistry::instance().write_json(sink_path); });
    }
    const char* summary = std::getenv("LVF2_METRICS_SUMMARY");
    if (summary != nullptr && summary[0] != '\0' &&
        std::string_view(summary) != "0") {
      std::atexit([] { MetricsRegistry::instance().write_text(stderr); });
    }
  }
} g_metrics_env_init;

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::observe(double v) {
  std::size_t bucket = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop, not fetch_add: atomic<double>::fetch_add is a C++20
  // addition not every supported toolchain implements correctly.
  detail::atomic_add(sum_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

DoubleCounter& MetricsRegistry::double_counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = double_counters_.find(name);
  if (it == double_counters_.end()) {
    it = double_counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name), std::move(bounds)).first;
  }
  return it->second;
}

Digest& MetricsRegistry::digest(std::string_view name, double compression) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = digests_.find(name);
  if (it == digests_.end()) {
    it = digests_.try_emplace(std::string(name), compression).first;
  }
  return it->second;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(c.value());
  }
  out += "},\"double_counters\":{";
  first = true;
  for (const auto& [name, c] : double_counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_json_number(out, c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_json_number(out, g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"bounds\":[";
    const auto& bounds = h.bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out += ',';
      append_json_number(out, bounds[i]);
    }
    out += "],\"counts\":[";
    const auto counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(counts[i]);
    }
    out += "],\"count\":";
    out += std::to_string(h.count());
    out += ",\"sum\":";
    append_json_number(out, h.sum());
    out += '}';
  }
  out += "},\"digests\":{";
  first = true;
  for (const auto& [name, d] : digests_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    const TDigest snap = d.snapshot();
    // Full centroid state (mergeable, 17-digit round-trippable) plus
    // the headline quantiles so readers need not re-derive them.
    out += json_write(snap.to_json(), JsonWriteOptions{17});
    out.pop_back();  // reopen the digest object to append "q"
    out += ",\"q\":{";
    static constexpr std::pair<const char*, double> kQuantiles[] = {
        {"p50", 0.50}, {"p90", 0.90}, {"p95", 0.95},
        {"p99", 0.99}, {"p999", 0.999}};
    bool first_q = true;
    for (const auto& [label, q] : kQuantiles) {
      if (!first_q) out += ',';
      first_q = false;
      append_json_string(out, label);
      out += ':';
      append_json_number(out, snap.count() > 0.0 ? snap.quantile(q) : 0.0);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; registry names use
// dots. Flatten everything else to '_'.
std::string prom_name(std::string_view prefix, std::string_view name) {
  std::string out(prefix);
  out += name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

void prom_number(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void prom_header(std::string& out, const std::string& name,
                 const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string MetricsRegistry::to_prometheus(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string m = prom_name(prefix, name) + "_total";
    prom_header(out, m, "counter");
    out += m;
    out += ' ';
    out += std::to_string(c.value());
    out += '\n';
  }
  for (const auto& [name, c] : double_counters_) {
    const std::string m = prom_name(prefix, name) + "_total";
    prom_header(out, m, "counter");
    out += m;
    out += ' ';
    prom_number(out, c.value());
    out += '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string m = prom_name(prefix, name);
    prom_header(out, m, "gauge");
    out += m;
    out += ' ';
    prom_number(out, g.value());
    out += '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string m = prom_name(prefix, name);
    prom_header(out, m, "histogram");
    const auto& bounds = h.bounds();
    const auto counts = h.bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      out += m;
      out += "_bucket{le=\"";
      if (i < bounds.size()) {
        prom_number(out, bounds[i]);
      } else {
        out += "+Inf";
      }
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += m;
    out += "_sum ";
    prom_number(out, h.sum());
    out += '\n';
    out += m;
    out += "_count ";
    out += std::to_string(h.count());
    out += '\n';
  }
  for (const auto& [name, d] : digests_) {
    const std::string m = prom_name(prefix, name);
    prom_header(out, m, "summary");
    const TDigest snap = d.snapshot();
    static constexpr const char* kLabels[] = {"0.5", "0.9", "0.95", "0.99",
                                              "0.999"};
    static constexpr double kQs[] = {0.50, 0.90, 0.95, 0.99, 0.999};
    for (std::size_t i = 0; i < 5; ++i) {
      out += m;
      out += "{quantile=\"";
      out += kLabels[i];
      out += "\"} ";
      prom_number(out, snap.quantile(kQs[i]));
      out += '\n';
    }
    out += m;
    out += "_sum ";
    prom_number(out, snap.sum());
    out += '\n';
    out += m;
    out += "_count ";
    out += std::to_string(static_cast<std::uint64_t>(snap.count()));
    out += '\n';
  }
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  // Atomic (<path>.tmp + rename): a crashed run never leaves a
  // truncated metrics file.
  write_file_atomic(path, to_json() + "\n");
}

void MetricsRegistry::write_text(std::FILE* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(out, "--- lvf2 metrics ---\n");
  for (const auto& [name, c] : counters_) {
    std::fprintf(out, "counter   %-32s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(c.value()));
  }
  for (const auto& [name, c] : double_counters_) {
    std::fprintf(out, "dcounter  %-32s %g\n", name.c_str(), c.value());
  }
  for (const auto& [name, g] : gauges_) {
    std::fprintf(out, "gauge     %-32s %g\n", name.c_str(), g.value());
  }
  for (const auto& [name, h] : histograms_) {
    const double mean =
        (h.count() > 0) ? h.sum() / static_cast<double>(h.count()) : 0.0;
    std::fprintf(out, "histogram %-32s count=%llu mean=%g\n", name.c_str(),
                 static_cast<unsigned long long>(h.count()), mean);
  }
  for (const auto& [name, d] : digests_) {
    const TDigest snap = d.snapshot();
    std::fprintf(out, "digest    %-32s count=%llu p50=%g p99=%g\n",
                 name.c_str(),
                 static_cast<unsigned long long>(snap.count()),
                 snap.count() > 0.0 ? snap.quantile(0.5) : 0.0,
                 snap.count() > 0.0 ? snap.quantile(0.99) : 0.0);
  }
}

}  // namespace lvf2::obs
