#include "obs/metrics.h"

#include <cmath>
#include <cstdlib>

#include "obs/manifest.h"

namespace lvf2::obs {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

// Registers the exit-time sinks when the metrics env vars are set.
struct MetricsEnvInit {
  MetricsEnvInit() {
    const char* path = std::getenv("LVF2_METRICS");
    if (path != nullptr && path[0] != '\0') {
      static std::string sink_path;
      sink_path = path;
      std::atexit(
          [] { MetricsRegistry::instance().write_json(sink_path); });
    }
    const char* summary = std::getenv("LVF2_METRICS_SUMMARY");
    if (summary != nullptr && summary[0] != '\0' &&
        std::string_view(summary) != "0") {
      std::atexit([] { MetricsRegistry::instance().write_text(stderr); });
    }
  }
} g_metrics_env_init;

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::observe(double v) {
  std::size_t bucket = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop, not fetch_add: atomic<double>::fetch_add is a C++20
  // addition not every supported toolchain implements correctly.
  detail::atomic_add(sum_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

DoubleCounter& MetricsRegistry::double_counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = double_counters_.find(name);
  if (it == double_counters_.end()) {
    it = double_counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name), std::move(bounds)).first;
  }
  return it->second;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(c.value());
  }
  out += "},\"double_counters\":{";
  first = true;
  for (const auto& [name, c] : double_counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_json_number(out, c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_json_number(out, g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"bounds\":[";
    const auto& bounds = h.bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out += ',';
      append_json_number(out, bounds[i]);
    }
    out += "],\"counts\":[";
    const auto counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(counts[i]);
    }
    out += "],\"count\":";
    out += std::to_string(h.count());
    out += ",\"sum\":";
    append_json_number(out, h.sum());
    out += '}';
  }
  out += "}}";
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  // Atomic (<path>.tmp + rename): a crashed run never leaves a
  // truncated metrics file.
  write_file_atomic(path, to_json() + "\n");
}

void MetricsRegistry::write_text(std::FILE* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(out, "--- lvf2 metrics ---\n");
  for (const auto& [name, c] : counters_) {
    std::fprintf(out, "counter   %-32s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(c.value()));
  }
  for (const auto& [name, c] : double_counters_) {
    std::fprintf(out, "dcounter  %-32s %g\n", name.c_str(), c.value());
  }
  for (const auto& [name, g] : gauges_) {
    std::fprintf(out, "gauge     %-32s %g\n", name.c_str(), g.value());
  }
  for (const auto& [name, h] : histograms_) {
    const double mean =
        (h.count() > 0) ? h.sum() / static_cast<double>(h.count()) : 0.0;
    std::fprintf(out, "histogram %-32s count=%llu mean=%g\n", name.c_str(),
                 static_cast<unsigned long long>(h.count()), mean);
  }
}

}  // namespace lvf2::obs
