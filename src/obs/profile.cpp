#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // dladdr
#endif

#include "obs/profile.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/manifest.h"
#include "obs/metrics.h"

#if __has_include(<execinfo.h>) && __has_include(<sys/time.h>) && \
    !defined(_WIN32)
#define LVF2_PROFILE_SUPPORTED 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#include <sys/time.h>
#else
#define LVF2_PROFILE_SUPPORTED 0
#endif

namespace lvf2::obs::prof {

namespace detail {
std::atomic<bool> g_profiler_enabled{false};
}  // namespace detail

namespace {

constexpr std::size_t kMaxFrames = 48;
// backtrace() called inside the sample handler sees its own frame and
// the kernel signal trampoline before the interrupted code; both are
// profiler noise and are dropped at drain time.
constexpr std::size_t kSkipFrames = 2;
constexpr std::size_t kMaxSamplesPerThread = 8192;
constexpr std::size_t kMaxThreads = 128;
constexpr std::size_t kStageBytes = 48;
constexpr std::size_t kMaxStageDepth = 8;

/// One captured sample. Fixed layout, written only from the owning
/// thread's signal handler, published via Slot::count.
struct Sample {
  void* frames[kMaxFrames];
  std::int32_t frame_count;
  char stage[kStageBytes];
};

/// Per-thread sample buffer slot. `in_use` marks a live registered
/// thread; retired slots keep their buffer and counts so samples from
/// threads that exited mid-session still reach the drain.
struct Slot {
#if LVF2_PROFILE_SUPPORTED
  pthread_t thread{};
#endif
  std::atomic<bool> in_use{false};
  std::atomic<Sample*> samples{nullptr};
  std::atomic<std::uint32_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
};

Slot g_slots[kMaxThreads];
std::atomic<std::size_t> g_slot_high_water{0};
std::mutex g_slots_mutex;  // registration only; never in handlers

// True while the broadcast handler iterates the slot table, so
// unregistration can wait out an in-flight pthread_kill sweep.
std::atomic<bool> g_broadcasting{false};

thread_local Slot* t_slot = nullptr;

/// Per-thread stage-tag stack. The name bytes are written before the
/// depth is published (signal fence), so the handler — which runs on
/// this same thread — never reads a half-written tag.
struct StageStack {
  char names[kMaxStageDepth][kStageBytes];
  std::atomic<std::uint32_t> depth{0};
};
thread_local StageStack t_stages;

std::mutex g_session_mutex;
ProfileOptions g_options;
bool g_running = false;
bool g_handlers_installed = false;
std::string g_last_path;

#if LVF2_PROFILE_SUPPORTED

/// Captures one sample of the calling thread. Async-signal-safe: no
/// locks, no allocation (backtrace is warmed up at start()).
void sample_current_thread() {
  Slot* slot = t_slot;
  if (slot == nullptr) return;
  Sample* buffer = slot->samples.load(std::memory_order_acquire);
  if (buffer == nullptr) return;
  const std::uint32_t index = slot->count.load(std::memory_order_relaxed);
  if (index >= kMaxSamplesPerThread) {
    slot->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Sample& sample = buffer[index];
  sample.frame_count =
      ::backtrace(sample.frames, static_cast<int>(kMaxFrames));
  const std::uint32_t depth = t_stages.depth.load(std::memory_order_relaxed);
  if (depth > 0) {
    const std::uint32_t top = std::min<std::uint32_t>(depth, kMaxStageDepth);
    std::memcpy(sample.stage, t_stages.names[top - 1], kStageBytes);
  } else {
    sample.stage[0] = '\0';
  }
  slot->count.store(index + 1, std::memory_order_release);
}

void sample_signal_handler(int /*signum*/) {
  if (!profiler_enabled()) return;
  const int saved_errno = errno;
  sample_current_thread();
  errno = saved_errno;
}

/// SIGALRM from the interval timer, delivered to an arbitrary thread:
/// samples the receiving thread directly and forwards SIGPROF to
/// every other registered thread. pthread_kill is async-signal-safe.
void broadcast_signal_handler(int /*signum*/) {
  if (!profiler_enabled()) return;
  const int saved_errno = errno;
  g_broadcasting.store(true, std::memory_order_seq_cst);
  const pthread_t self = pthread_self();
  const std::size_t high = g_slot_high_water.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < high; ++i) {
    Slot& slot = g_slots[i];
    if (!slot.in_use.load(std::memory_order_acquire)) continue;
    if (pthread_equal(slot.thread, self)) {
      sample_current_thread();
    } else {
      pthread_kill(slot.thread, SIGPROF);
    }
  }
  g_broadcasting.store(false, std::memory_order_seq_cst);
  errno = saved_errno;
}

bool install_handlers_locked() {
  if (g_handlers_installed) return true;
  struct sigaction sample_action;
  std::memset(&sample_action, 0, sizeof(sample_action));
  sample_action.sa_handler = sample_signal_handler;
  sample_action.sa_flags = SA_RESTART;
  sigemptyset(&sample_action.sa_mask);
  sigaddset(&sample_action.sa_mask, SIGALRM);
  struct sigaction broadcast_action;
  std::memset(&broadcast_action, 0, sizeof(broadcast_action));
  broadcast_action.sa_handler = broadcast_signal_handler;
  broadcast_action.sa_flags = SA_RESTART;
  sigemptyset(&broadcast_action.sa_mask);
  sigaddset(&broadcast_action.sa_mask, SIGPROF);
  if (sigaction(SIGPROF, &sample_action, nullptr) != 0 ||
      sigaction(SIGALRM, &broadcast_action, nullptr) != 0) {
    std::fprintf(stderr, "lvf2-prof: cannot install signal handlers\n");
    return false;
  }
  g_handlers_installed = true;
  return true;
}

bool set_timer(int hz) {
  struct itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  if (hz > 0) {
    const long period_us = std::max(1000000L / hz, 1L);
    timer.it_interval.tv_sec = period_us / 1000000L;
    timer.it_interval.tv_usec = period_us % 1000000L;
    timer.it_value = timer.it_interval;
  }
  return setitimer(ITIMER_REAL, &timer, nullptr) == 0;
}

#endif  // LVF2_PROFILE_SUPPORTED

void ensure_buffer_locked(Slot& slot) {
  if (slot.samples.load(std::memory_order_relaxed) != nullptr) return;
  // Buffers live for the rest of the process (reused across
  // sessions): freeing them would race in-flight handlers.
  Sample* buffer = static_cast<Sample*>(
      std::calloc(kMaxSamplesPerThread, sizeof(Sample)));
  if (buffer == nullptr) return;  // slot stays unsampled
  slot.samples.store(buffer, std::memory_order_release);
}

/// Starts from LVF2_PROFILE at static-initialization time so a
/// profile covers main() end to end, mirroring LVF2_TRACE.
struct ProfileEnvInit {
  ProfileEnvInit() {
    const char* spec = std::getenv("LVF2_PROFILE");
    if (spec == nullptr || spec[0] == '\0') return;
    std::string error;
    const std::optional<ProfileOptions> options =
        parse_profile_spec(spec, &error);
    if (!options) {
      std::fprintf(stderr, "lvf2-prof: bad LVF2_PROFILE: %s\n",
                   error.c_str());
      return;
    }
    if (Profiler::instance().start(*options)) {
      std::atexit([] { Profiler::instance().stop(); });
    }
  }
} g_profile_env_init;

}  // namespace

std::optional<ProfileOptions> parse_profile_spec(const char* spec,
                                                 std::string* error) {
  if (spec == nullptr || spec[0] == '\0') {
    if (error) *error = "empty specification";
    return std::nullopt;
  }
  ProfileOptions options;
  const std::string_view view(spec);
  const std::size_t comma = view.rfind(",hz=");
  if (comma == std::string_view::npos) {
    options.path = std::string(view);
  } else {
    options.path = std::string(view.substr(0, comma));
    const std::string_view hz_text = view.substr(comma + 4);
    char* end = nullptr;
    const std::string hz_string(hz_text);
    const long hz = std::strtol(hz_string.c_str(), &end, 10);
    if (end == hz_string.c_str() || *end != '\0' || hz <= 0) {
      if (error) *error = "unparsable hz in \"" + std::string(view) + "\"";
      return std::nullopt;
    }
    options.hz = static_cast<int>(std::clamp(hz, 1L, 1000L));
  }
  if (options.path.empty()) {
    if (error) *error = "empty path in \"" + std::string(view) + "\"";
    return std::nullopt;
  }
  return options;
}

void push_stage(std::string_view name) {
  const std::uint32_t depth = t_stages.depth.load(std::memory_order_relaxed);
  if (depth < kMaxStageDepth) {
    char* slot = t_stages.names[depth];
    const std::size_t n = std::min(name.size(), kStageBytes - 1);
    std::memcpy(slot, name.data(), n);
    slot[n] = '\0';
    // The tag bytes must be visible before the depth that exposes
    // them to this thread's own signal handler.
    std::atomic_signal_fence(std::memory_order_seq_cst);
  }
  t_stages.depth.store(depth + 1, std::memory_order_relaxed);
}

void pop_stage() {
  const std::uint32_t depth = t_stages.depth.load(std::memory_order_relaxed);
  if (depth > 0) t_stages.depth.store(depth - 1, std::memory_order_relaxed);
}

std::string current_stage() {
  const std::uint32_t depth = t_stages.depth.load(std::memory_order_relaxed);
  if (depth == 0) return "";
  const std::uint32_t top = std::min<std::uint32_t>(depth, kMaxStageDepth);
  return t_stages.names[top - 1];
}

void register_current_thread() {
#if LVF2_PROFILE_SUPPORTED
  if (t_slot != nullptr) return;
  std::lock_guard<std::mutex> lock(g_slots_mutex);
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    Slot& slot = g_slots[i];
    if (slot.in_use.load(std::memory_order_relaxed)) continue;
    slot.thread = pthread_self();
    slot.in_use.store(true, std::memory_order_release);
    const std::size_t high = g_slot_high_water.load(std::memory_order_relaxed);
    if (i + 1 > high) {
      g_slot_high_water.store(i + 1, std::memory_order_release);
    }
    if (profiler_enabled()) ensure_buffer_locked(slot);
    t_slot = &slot;
    return;
  }
  // Table full: the thread simply goes unsampled.
#endif
}

void unregister_current_thread() {
#if LVF2_PROFILE_SUPPORTED
  Slot* slot = t_slot;
  if (slot == nullptr) return;
  slot->in_use.store(false, std::memory_order_release);
  // An in-flight broadcast may have snapshotted this slot before the
  // store; wait it out so no pthread_kill can target this thread
  // after it exits. The slot (and its samples) stays valid for the
  // drain and may be reused by a later thread.
  while (g_broadcasting.load(std::memory_order_seq_cst)) {
  }
  t_slot = nullptr;
#endif
}

void FoldedProfile::add(std::string_view stage, const void* const* frames,
                        std::size_t frame_count, std::uint64_t count) {
  Key key;
  key.stage = stage.empty() ? "(untagged)" : std::string(stage);
  key.frames.assign(frames, frames + frame_count);
  stacks_[std::move(key)] += count;
  total_ += count;
}

std::string FoldedProfile::render(
    const std::function<std::string(const void*)>& symbolizer) const {
  // Symbolize each unique address once: dladdr per frame per stack
  // would dominate drain time on deep profiles.
  std::map<const void*, std::string> symbols;
  for (const auto& [key, count] : stacks_) {
    for (const void* frame : key.frames) {
      symbols.emplace(frame, std::string());
    }
  }
  for (auto& [address, label] : symbols) label = symbolizer(address);

  std::string out;
  for (const auto& [key, count] : stacks_) {
    out += key.stage;
    // Folded convention is root-first; frames arrive innermost-first.
    for (auto it = key.frames.rbegin(); it != key.frames.rend(); ++it) {
      out += ';';
      out += symbols[*it];
    }
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string symbolize_address(const void* addr) {
#if LVF2_PROFILE_SUPPORTED
  Dl_info info;
  if (dladdr(const_cast<void*>(addr), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    // Semicolons and spaces are folded-format separators.
    for (char& c : name) {
      if (c == ';' || c == ' ' || c == '\n') c = '_';
    }
    return name;
  }
  if (dladdr(const_cast<void*>(addr), &info) != 0 &&
      info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    std::string name = "[";
    name += (base != nullptr) ? base + 1 : info.dli_fname;
    name += ']';
    return name;
  }
#endif
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%zx",
                reinterpret_cast<std::size_t>(addr));
  return buf;
}

Profiler& Profiler::instance() {
  static Profiler* profiler = new Profiler();  // leaked, like the tracer
  return *profiler;
}

bool Profiler::running() const {
  std::lock_guard<std::mutex> lock(g_session_mutex);
  return g_running;
}

ProfileStats Profiler::stats() const {
  ProfileStats stats;
  const std::size_t high = g_slot_high_water.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < high; ++i) {
    const std::uint32_t count = g_slots[i].count.load(std::memory_order_acquire);
    stats.samples += count;
    stats.dropped += g_slots[i].dropped.load(std::memory_order_relaxed);
    if (count > 0) ++stats.threads;
  }
  return stats;
}

bool Profiler::start(const ProfileOptions& options) {
#if LVF2_PROFILE_SUPPORTED
  std::lock_guard<std::mutex> lock(g_session_mutex);
  if (g_running) {
    std::fprintf(stderr, "lvf2-prof: a profiling session is already on\n");
    return false;
  }
  if (!install_handlers_locked()) return false;
  // backtrace() lazily loads libgcc on first use (a malloc + dlopen);
  // force that outside signal context.
  void* warmup[4];
  ::backtrace(warmup, 4);

  register_current_thread();
  {
    std::lock_guard<std::mutex> slots_lock(g_slots_mutex);
    const std::size_t high = g_slot_high_water.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < high; ++i) {
      Slot& slot = g_slots[i];
      slot.count.store(0, std::memory_order_relaxed);
      slot.dropped.store(0, std::memory_order_relaxed);
      if (slot.in_use.load(std::memory_order_relaxed)) {
        ensure_buffer_locked(slot);
      }
    }
  }

  g_options = options;
  detail::g_profiler_enabled.store(true, std::memory_order_relaxed);
  if (!set_timer(options.hz)) {
    detail::g_profiler_enabled.store(false, std::memory_order_relaxed);
    std::fprintf(stderr, "lvf2-prof: cannot start interval timer\n");
    return false;
  }
  g_running = true;

  with_manifest([&](ManifestRecorder& m) {
    m.set_section_provider("profile", [] {
      const ProfileStats stats = Profiler::instance().stats();
      std::string out = "{\"path\":";
      json_append_string(out, g_options.path);
      out += ",\"hz\":" + std::to_string(g_options.hz);
      out += ",\"samples\":" + std::to_string(stats.samples);
      out += ",\"dropped\":" + std::to_string(stats.dropped);
      out += ",\"threads\":" + std::to_string(stats.threads);
      out += '}';
      return out;
    });
  });
  return true;
#else
  std::fprintf(stderr, "lvf2-prof: profiling unsupported on this platform\n");
  (void)options;
  return false;
#endif
}

void Profiler::stop() {
#if LVF2_PROFILE_SUPPORTED
  std::lock_guard<std::mutex> lock(g_session_mutex);
  if (!g_running) return;
  set_timer(0);
  detail::g_profiler_enabled.store(false, std::memory_order_relaxed);
  // Let any broadcast sweep that started before the flag flipped
  // finish delivering; its handlers see the flag down and return.
  while (g_broadcasting.load(std::memory_order_seq_cst)) {
  }

  FoldedProfile folded;
  ProfileStats stats;
  const std::size_t high = g_slot_high_water.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < high; ++i) {
    Slot& slot = g_slots[i];
    const Sample* buffer = slot.samples.load(std::memory_order_acquire);
    const std::uint32_t count = slot.count.load(std::memory_order_acquire);
    stats.dropped += slot.dropped.load(std::memory_order_relaxed);
    if (buffer == nullptr || count == 0) continue;
    stats.samples += count;
    ++stats.threads;
    for (std::uint32_t s = 0; s < count; ++s) {
      const Sample& sample = buffer[s];
      const std::size_t frames =
          static_cast<std::size_t>(std::max<std::int32_t>(sample.frame_count, 0));
      const std::size_t skip = std::min(kSkipFrames, frames);
      folded.add(sample.stage, sample.frames + skip, frames - skip);
    }
  }

  write_file_atomic(g_options.path, folded.render(symbolize_address));
  last_path_ = g_options.path;
  counter("profile.samples").add(stats.samples);
  counter("profile.dropped").add(stats.dropped);
  g_running = false;
#endif
}

}  // namespace lvf2::obs::prof
