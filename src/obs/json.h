#pragma once
// Minimal JSON document model shared by the observability sinks and
// the tools that read them back (tools/lvf2_report, tests). Objects
// preserve insertion order — the manifest writer emits keys in a
// documented, stable order and the parser must not destroy it, so
// a parse/serialize round trip is byte-stable.
//
// The parser is strict (no comments, no trailing commas); numbers are
// stored as double, which is exact for every value the sinks emit
// (%.9g renderings and counters below 2^53).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lvf2::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Key/value pairs in insertion (= document) order.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Member lookup (objects only); nullptr when absent.
  const JsonValue* find(std::string_view key) const;
  bool has(std::string_view key) const { return find(key) != nullptr; }

  /// `number` of member `key`, or `fallback` when absent / non-number.
  double number_or(std::string_view key, double fallback) const;
  /// `string` of member `key`, or `fallback` when absent / non-string.
  std::string string_or(std::string_view key, std::string_view fallback) const;
};

/// Parses strict JSON. On failure returns nullopt and, when `error`
/// is non-null, stores a one-line description with the byte offset.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

/// Appends `s` to `out` as a quoted JSON string with escaping.
void json_append_string(std::string& out, std::string_view s);

/// Appends `v` to `out` as a JSON number (%.9g); non-finite values
/// are not representable in JSON and degrade to null.
void json_append_number(std::string& out, double v);

/// Same with an explicit %g precision. 17 significant digits
/// round-trip any IEEE double exactly through parse (strtod), which
/// is what the result cache relies on for bitwise-stable replays.
void json_append_number(std::string& out, double v, int precision);

/// Serialization options. The default (9 digits) matches the sink
/// writers; the result cache serializes at 17 for exact round trips.
struct JsonWriteOptions {
  int double_precision = 9;
};

/// Serializes `value` (compact, no whitespace), preserving object key
/// order. Numbers render as %.9g, matching the sink writers.
void json_write(const JsonValue& value, std::string& out);
std::string json_write(const JsonValue& value);
void json_write(const JsonValue& value, std::string& out,
                const JsonWriteOptions& options);
std::string json_write(const JsonValue& value, const JsonWriteOptions& options);

}  // namespace lvf2::obs
