// Scalar dispatch tier: every kernel is an element-wise loop over the
// existing per-sample stats:: functions, in index order — bitwise
// identical to the pre-batch code paths by construction. This is the
// tier the zero-tolerance golden-manifest gate runs against
// (LVF2_SIMD=scalar), and the correctness reference the SIMD tiers'
// ULP tests compare to.

#include <cmath>
#include <cstddef>

#include "simd/kernel_table.h"
#include "stats/special_functions.h"

namespace lvf2::simd::detail {

namespace {

void s_normal_pdf(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = stats::normal_pdf(x[i]);
}

void s_normal_cdf(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = stats::normal_cdf(x[i]);
}

void s_normal_log_cdf(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = stats::normal_log_cdf(x[i]);
}

void s_normal_quantile(const double* p, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = stats::normal_quantile(p[i]);
}

void s_exp(const double* x, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(x[i]);
}

void s_owens_t(const double* h, double a, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = stats::owens_t(h[i], a);
}

void s_sn_log_pdf(double xi, double omega, double alpha, const double* x,
                  double* out, std::size_t n) {
  // Same expression as SkewNormal::log_pdf, element by element.
  for (std::size_t i = 0; i < n; ++i) {
    const double z = (x[i] - xi) / omega;
    out[i] = std::log(2.0 / omega) - 0.5 * z * z -
             std::log(stats::kSqrt2Pi) + stats::normal_log_cdf(alpha * z);
  }
}

void s_sn_pdf(double xi, double omega, double alpha, const double* x,
              double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double z = (x[i] - xi) / omega;
    out[i] = 2.0 / omega * stats::normal_pdf(z) *
             stats::normal_cdf(alpha * z);
  }
}

void s_sn_cdf(double xi, double omega, double alpha, const double* x,
              double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double z = (x[i] - xi) / omega;
    const double value =
        stats::normal_cdf(z) - 2.0 * stats::owens_t(z, alpha);
    const double lo = value < 0.0 ? 0.0 : value;
    out[i] = lo > 1.0 ? 1.0 : lo;
  }
}

void s_esn_log_pdf(double xi, double omega, double alpha, double tau,
                   const double* x, double* out, std::size_t n) {
  // Same expression as ExtendedSkewNormal::log_pdf.
  for (std::size_t i = 0; i < n; ++i) {
    const double z = (x[i] - xi) / omega;
    const double arg = tau * std::sqrt(1.0 + alpha * alpha) + alpha * z;
    out[i] = -0.5 * z * z - std::log(stats::kSqrt2Pi * omega) +
             stats::normal_log_cdf(arg) - stats::normal_log_cdf(tau);
  }
}

void s_esn_pdf(double xi, double omega, double alpha, double tau,
               const double* x, double* out, std::size_t n) {
  s_esn_log_pdf(xi, omega, alpha, tau, x, out, n);
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(out[i]);
}

void s_normal_mu_sigma_log_pdf(double mu, double sigma, const double* x,
                               double* out, std::size_t n) {
  // Same expression as stats::Normal::log_pdf.
  for (std::size_t i = 0; i < n; ++i) {
    const double z = (x[i] - mu) / sigma;
    out[i] = -0.5 * z * z - std::log(sigma * stats::kSqrt2Pi);
  }
}

void s_em_responsibilities(double log_w_a, double log_w_b,
                           const double* lpa, const double* lpb,
                           double* resp, double* lse, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double a = log_w_a + lpa[i];
    const double b = log_w_b + lpb[i];
    const double l = stats::log_sum_exp(a, b);
    lse[i] = l;
    resp[i] = std::exp(b - l);
  }
}

void s_axpy(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

double s_sn_nll(double xi, double omega, double alpha, const double* x,
                const double* w, std::size_t n) {
  // Bitwise-identical to filling a log-pdf buffer with s_sn_log_pdf
  // and reducing it with the historical scalar loop: same per-sample
  // expressions, same terms, same order.
  double nll = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (w[i] <= 0.0) continue;
    const double z = (x[i] - xi) / omega;
    nll -= w[i] * (std::log(2.0 / omega) - 0.5 * z * z -
                   std::log(stats::kSqrt2Pi) +
                   stats::normal_log_cdf(alpha * z));
  }
  return nll;
}

constexpr KernelTable kScalarTable = {
    s_normal_pdf,
    s_normal_cdf,
    s_normal_log_cdf,
    s_normal_quantile,
    s_exp,
    s_owens_t,
    s_sn_log_pdf,
    s_sn_pdf,
    s_sn_cdf,
    s_esn_log_pdf,
    s_esn_pdf,
    s_normal_mu_sigma_log_pdf,
    s_em_responsibilities,
    s_axpy,
    s_sn_nll,
};

}  // namespace

const KernelTable* scalar_kernels() { return &kScalarTable; }

}  // namespace lvf2::simd::detail
