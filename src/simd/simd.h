#pragma once
// Public batch-kernel API for the statistical hot path. A dispatch
// tier (scalar / SSE2 / AVX2+FMA) is resolved once, on first use,
// from CPUID plus the LVF2_SIMD environment override
// (auto|avx2|sse2|scalar), and recorded in the run manifest as
// "simd.tier". The scalar tier delegates element-wise to the stats::
// per-sample functions and is bitwise identical to calling them in a
// loop; the SIMD tiers agree to a few ULP (see tests/test_simd.cpp
// for the exact bounds).
//
// All span overloads require out.size() >= x.size(); in-place
// (out == x) is allowed for the unary kernels.

#include <cstddef>
#include <span>

namespace lvf2::simd {

enum class Tier {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Tier in effect (resolves on first call; thread-safe).
Tier active_tier();

/// "scalar" / "sse2" / "avx2".
const char* tier_name(Tier tier);

/// Whether the binary carries kernels for `tier` and the CPU can run
/// them (always true for kScalar).
bool tier_available(Tier tier);

/// Test hook: force a tier (must be available), bypassing the
/// environment/CPUID choice. Not thread-safe; call from test setup
/// only. Returns the previously active tier.
Tier set_tier_for_testing(Tier tier);

// --- standard-normal primitives ------------------------------------
void normal_pdf(std::span<const double> x, std::span<double> out);
void normal_cdf(std::span<const double> x, std::span<double> out);
void normal_log_cdf(std::span<const double> x, std::span<double> out);
void normal_quantile(std::span<const double> p, std::span<double> out);
void exp(std::span<const double> x, std::span<double> out);

/// Owen's T(h[i], a) with fixed second argument.
void owens_t(std::span<const double> h, double a, std::span<double> out);

// --- distribution kernels (fixed parameters, batched argument) -----
void sn_log_pdf(double xi, double omega, double alpha,
                std::span<const double> x, std::span<double> out);
void sn_pdf(double xi, double omega, double alpha,
            std::span<const double> x, std::span<double> out);
void sn_cdf(double xi, double omega, double alpha,
            std::span<const double> x, std::span<double> out);
void esn_log_pdf(double xi, double omega, double alpha, double tau,
                 std::span<const double> x, std::span<double> out);
void esn_pdf(double xi, double omega, double alpha, double tau,
             std::span<const double> x, std::span<double> out);
void normal_mu_sigma_log_pdf(double mu, double sigma,
                             std::span<const double> x,
                             std::span<double> out);

/// Two-component E-step combine: with a_i = log_w_a + lpa[i] and
/// b_i = log_w_b + lpb[i], writes lse[i] = log_sum_exp(a_i, b_i) and
/// resp[i] = exp(b_i - lse[i]).
void em_responsibilities(double log_w_a, double log_w_b,
                         std::span<const double> lpa,
                         std::span<const double> lpb,
                         std::span<double> resp, std::span<double> lse);

/// y[i] += a * x[i], never fused (bitwise identical across tiers).
void axpy(double a, std::span<const double> x, std::span<double> y);

/// Fused M-step objective: -sum over {i : w[i] > 0} of
/// w[i] * sn_log_pdf(xi, omega, alpha; x[i]). On the scalar tier this
/// is bitwise identical to filling a log-pdf buffer and reducing it
/// with the historical scalar loop; the vector tiers fuse the
/// reduction (per-lane accumulators summed in lane order, so the
/// result is deterministic for a fixed size).
double sn_weighted_nll(double xi, double omega, double alpha,
                       std::span<const double> x,
                       std::span<const double> w);

}  // namespace lvf2::simd
