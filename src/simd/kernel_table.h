#pragma once
// Internal: the per-tier kernel function table. Raw-pointer
// signatures on purpose — the per-ISA translation units are compiled
// with different -march flags, and keeping std:: templates out of
// their interface avoids any chance of an AVX2-encoded comdat inline
// being picked by the linker for the portable binary. dispatch.cpp
// owns tier resolution and the public std::span wrappers (simd.h).

#include <cstddef>

namespace lvf2::simd::detail {

struct KernelTable {
  void (*normal_pdf)(const double*, double*, std::size_t);
  void (*normal_cdf)(const double*, double*, std::size_t);
  void (*normal_log_cdf)(const double*, double*, std::size_t);
  void (*normal_quantile)(const double*, double*, std::size_t);
  void (*exp)(const double*, double*, std::size_t);
  void (*owens_t)(const double*, double, double*, std::size_t);
  void (*sn_log_pdf)(double xi, double omega, double alpha, const double*,
                     double*, std::size_t);
  void (*sn_pdf)(double xi, double omega, double alpha, const double*,
                 double*, std::size_t);
  void (*sn_cdf)(double xi, double omega, double alpha, const double*,
                 double*, std::size_t);
  void (*esn_log_pdf)(double xi, double omega, double alpha, double tau,
                      const double*, double*, std::size_t);
  void (*esn_pdf)(double xi, double omega, double alpha, double tau,
                  const double*, double*, std::size_t);
  void (*normal_mu_sigma_log_pdf)(double mu, double sigma, const double*,
                                  double*, std::size_t);
  // E-step combine: a_i = log_w_a + lpa[i], b_i = log_w_b + lpb[i];
  // lse[i] = log_sum_exp(a_i, b_i), resp[i] = exp(b_i - lse[i]).
  void (*em_responsibilities)(double log_w_a, double log_w_b,
                              const double* lpa, const double* lpb,
                              double* resp, double* lse, std::size_t);
  // y[i] += a * x[i] with an unfused multiply+add on every tier, so
  // grid convolution stays bitwise identical across tiers.
  void (*axpy)(double a, const double*, double*, std::size_t);
  // Fused M-step objective: -sum_{w_i > 0} w_i * sn_log_pdf(x_i).
  // Scalar tier reproduces the buffer+scalar-loop formulation bitwise;
  // vector tiers fuse the reduction (per-lane accumulators, summed in
  // lane order).
  double (*sn_nll)(double xi, double omega, double alpha, const double* x,
                   const double* w, std::size_t n);
};

/// Always available (element-wise delegation to stats::).
const KernelTable* scalar_kernels();
/// nullptr when the TU could not be built for the ISA.
const KernelTable* sse2_kernels();
const KernelTable* avx2_kernels();

}  // namespace lvf2::simd::detail
