#pragma once
// SIMD lane wrappers for the batch math kernels. Each wrapper exposes
// the same static interface (broadcast/load/store, arithmetic
// operators, masks-as-lanes compare/blend, and the two bit-level
// primitives the exp/log kernels need), so vmath.h and
// kernels_impl.h are written once as templates and instantiated per
// ISA in kernels_sse2.cpp / kernels_avx2.cpp.
//
// This header is only included from the per-tier translation units:
// kernels_sse2.cpp (baseline x86-64 — SSE2 is unconditional there)
// and kernels_avx2.cpp (compiled with -mavx2 -mfma, guarded by
// __AVX2__ so other build targets simply skip the type). Nothing
// here may leak into baseline TUs: per-TU -march flags must not
// generate inline code reachable from the portable binary.
//
// Two-product policy: mul_add() fuses on AVX2 (vfmadd) and falls
// back to separate multiply+add on SSE2; two_prod() is an *exact*
// product on both tiers — native FMA on AVX2, a Veltkamp split on
// SSE2 — because the double-double correction steps in vmath.h need
// the true residual, not a faster rounding.

#include <immintrin.h>

#include <cstdint>

namespace lvf2::simd {

struct VecSse2 {
  __m128d v;
  static constexpr int kLanes = 2;

  static VecSse2 broadcast(double x) { return {_mm_set1_pd(x)}; }
  static VecSse2 load(const double* p) { return {_mm_loadu_pd(p)}; }
  static VecSse2 zero() { return {_mm_setzero_pd()}; }
  void store(double* p) const { _mm_storeu_pd(p, v); }
};

inline VecSse2 operator+(VecSse2 a, VecSse2 b) {
  return {_mm_add_pd(a.v, b.v)};
}
inline VecSse2 operator-(VecSse2 a, VecSse2 b) {
  return {_mm_sub_pd(a.v, b.v)};
}
inline VecSse2 operator*(VecSse2 a, VecSse2 b) {
  return {_mm_mul_pd(a.v, b.v)};
}
inline VecSse2 operator/(VecSse2 a, VecSse2 b) {
  return {_mm_div_pd(a.v, b.v)};
}
inline VecSse2 neg(VecSse2 a) {
  return {_mm_xor_pd(a.v, _mm_set1_pd(-0.0))};
}
inline VecSse2 abs_v(VecSse2 a) {
  return {_mm_andnot_pd(_mm_set1_pd(-0.0), a.v)};
}
inline VecSse2 sqrt_v(VecSse2 a) { return {_mm_sqrt_pd(a.v)}; }
inline VecSse2 max_v(VecSse2 a, VecSse2 b) {
  return {_mm_max_pd(a.v, b.v)};
}
inline VecSse2 min_v(VecSse2 a, VecSse2 b) {
  return {_mm_min_pd(a.v, b.v)};
}
inline VecSse2 cmp_lt(VecSse2 a, VecSse2 b) {
  return {_mm_cmplt_pd(a.v, b.v)};
}
inline VecSse2 cmp_le(VecSse2 a, VecSse2 b) {
  return {_mm_cmple_pd(a.v, b.v)};
}
inline VecSse2 cmp_ge(VecSse2 a, VecSse2 b) {
  return {_mm_cmpge_pd(a.v, b.v)};
}
inline VecSse2 cmp_eq(VecSse2 a, VecSse2 b) {
  return {_mm_cmpeq_pd(a.v, b.v)};
}
/// Lanes where a is NaN (unordered with itself).
inline VecSse2 cmp_nan(VecSse2 a) { return {_mm_cmpunord_pd(a.v, a.v)}; }
inline VecSse2 and_v(VecSse2 a, VecSse2 b) {
  return {_mm_and_pd(a.v, b.v)};
}
inline VecSse2 or_v(VecSse2 a, VecSse2 b) { return {_mm_or_pd(a.v, b.v)}; }
/// a & ~mask.
inline VecSse2 andnot_v(VecSse2 mask, VecSse2 a) {
  return {_mm_andnot_pd(mask.v, a.v)};
}
/// a where mask lanes are all-ones, else b.
inline VecSse2 blend_v(VecSse2 mask, VecSse2 a, VecSse2 b) {
  return {_mm_or_pd(_mm_and_pd(mask.v, a.v), _mm_andnot_pd(mask.v, b.v))};
}
inline bool any(VecSse2 mask) { return _mm_movemask_pd(mask.v) != 0; }
inline int mask_bits(VecSse2 mask) { return _mm_movemask_pd(mask.v); }

/// a*b + c; SSE2 has no FMA, so two roundings.
inline VecSse2 mul_add(VecSse2 a, VecSse2 b, VecSse2 c) {
  return {_mm_add_pd(_mm_mul_pd(a.v, b.v), c.v)};
}

/// Exact product: hi + lo == a*b exactly. Veltkamp split (no FMA on
/// SSE2); exact as long as no intermediate overflows, which holds for
/// every call site in vmath.h (|a*b| < 1e300).
inline void two_prod(VecSse2 a, VecSse2 b, VecSse2& hi, VecSse2& lo) {
  const __m128d split = _mm_set1_pd(134217729.0);  // 2^27 + 1
  __m128d p = _mm_mul_pd(a.v, b.v);
  __m128d ta = _mm_mul_pd(a.v, split);
  __m128d ahi = _mm_sub_pd(ta, _mm_sub_pd(ta, a.v));
  __m128d alo = _mm_sub_pd(a.v, ahi);
  __m128d tb = _mm_mul_pd(b.v, split);
  __m128d bhi = _mm_sub_pd(tb, _mm_sub_pd(tb, b.v));
  __m128d blo = _mm_sub_pd(b.v, bhi);
  __m128d err = _mm_add_pd(
      _mm_add_pd(
          _mm_add_pd(_mm_sub_pd(_mm_mul_pd(ahi, bhi), p),
                     _mm_mul_pd(ahi, blo)),
          _mm_mul_pd(alo, bhi)),
      _mm_mul_pd(alo, blo));
  hi = {p};
  lo = {err};
}

/// Round to nearest integer, result as double lanes. cvtpd_epi32
/// rounds to nearest-even, which is all the exp reduction needs.
inline VecSse2 round_nearest(VecSse2 a) {
  return {_mm_cvtepi32_pd(_mm_cvtpd_epi32(a.v))};
}

/// y * 2^n for integral-valued double lanes n with n in [-1021, 1021]
/// (callers split larger scalings in two). Builds 2^n as a value and
/// multiplies, so results that underflow to subnormal round correctly.
inline VecSse2 ldexp_small(VecSse2 y, VecSse2 n) {
  __m128i ni = _mm_cvtpd_epi32(n.v);              // [n0 n1 * *] as i32
  __m128i wide = _mm_unpacklo_epi32(ni, _mm_srai_epi32(ni, 31));
  __m128i bits =
      _mm_slli_epi64(_mm_add_epi64(wide, _mm_set1_epi64x(1023)), 52);
  return {_mm_mul_pd(y.v, _mm_castsi128_pd(bits))};
}

/// fdlibm log argument split for strictly normal positive x:
/// x = m * 2^k with m in [sqrt(2)/2, sqrt(2)).
inline void log_split(VecSse2 x, VecSse2& m, VecSse2& k) {
  const __m128i mant_mask = _mm_set1_epi64x(0x000FFFFFFFFFFFFFLL);
  const __m128i magic = _mm_set1_epi64x(0x00095F6400000000LL);
  const __m128i top = _mm_set1_epi64x(0x0010000000000000LL);
  const __m128i bias = _mm_set1_epi64x(1023);
  __m128i bits = _mm_castpd_si128(x.v);
  __m128i e = _mm_sub_epi64(_mm_srli_epi64(bits, 52), bias);
  __m128i frac = _mm_and_si128(bits, mant_mask);
  __m128i i = _mm_and_si128(_mm_add_epi64(frac, magic), top);
  e = _mm_add_epi64(e, _mm_srli_epi64(i, 52));
  __m128i mbits = _mm_or_si128(
      frac, _mm_xor_si128(_mm_set1_epi64x(0x3FF0000000000000LL), i));
  m = {_mm_castsi128_pd(mbits)};
  // Exponents fit in 32 bits; compress the low halves and convert.
  __m128i lo32 = _mm_shuffle_epi32(e, _MM_SHUFFLE(3, 1, 2, 0));
  k = {_mm_cvtepi32_pd(lo32)};
}

#if defined(__AVX2__) && defined(__FMA__)

struct VecAvx2 {
  __m256d v;
  static constexpr int kLanes = 4;

  static VecAvx2 broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static VecAvx2 load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static VecAvx2 zero() { return {_mm256_setzero_pd()}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
};

inline VecAvx2 operator+(VecAvx2 a, VecAvx2 b) {
  return {_mm256_add_pd(a.v, b.v)};
}
inline VecAvx2 operator-(VecAvx2 a, VecAvx2 b) {
  return {_mm256_sub_pd(a.v, b.v)};
}
inline VecAvx2 operator*(VecAvx2 a, VecAvx2 b) {
  return {_mm256_mul_pd(a.v, b.v)};
}
inline VecAvx2 operator/(VecAvx2 a, VecAvx2 b) {
  return {_mm256_div_pd(a.v, b.v)};
}
inline VecAvx2 neg(VecAvx2 a) {
  return {_mm256_xor_pd(a.v, _mm256_set1_pd(-0.0))};
}
inline VecAvx2 abs_v(VecAvx2 a) {
  return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
}
inline VecAvx2 sqrt_v(VecAvx2 a) { return {_mm256_sqrt_pd(a.v)}; }
inline VecAvx2 max_v(VecAvx2 a, VecAvx2 b) {
  return {_mm256_max_pd(a.v, b.v)};
}
inline VecAvx2 min_v(VecAvx2 a, VecAvx2 b) {
  return {_mm256_min_pd(a.v, b.v)};
}
inline VecAvx2 cmp_lt(VecAvx2 a, VecAvx2 b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
}
inline VecAvx2 cmp_le(VecAvx2 a, VecAvx2 b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
}
inline VecAvx2 cmp_ge(VecAvx2 a, VecAvx2 b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
}
inline VecAvx2 cmp_eq(VecAvx2 a, VecAvx2 b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
}
inline VecAvx2 cmp_nan(VecAvx2 a) {
  return {_mm256_cmp_pd(a.v, a.v, _CMP_UNORD_Q)};
}
inline VecAvx2 and_v(VecAvx2 a, VecAvx2 b) {
  return {_mm256_and_pd(a.v, b.v)};
}
inline VecAvx2 or_v(VecAvx2 a, VecAvx2 b) {
  return {_mm256_or_pd(a.v, b.v)};
}
inline VecAvx2 andnot_v(VecAvx2 mask, VecAvx2 a) {
  return {_mm256_andnot_pd(mask.v, a.v)};
}
inline VecAvx2 blend_v(VecAvx2 mask, VecAvx2 a, VecAvx2 b) {
  return {_mm256_blendv_pd(b.v, a.v, mask.v)};
}
inline bool any(VecAvx2 mask) { return _mm256_movemask_pd(mask.v) != 0; }
inline int mask_bits(VecAvx2 mask) { return _mm256_movemask_pd(mask.v); }

inline VecAvx2 mul_add(VecAvx2 a, VecAvx2 b, VecAvx2 c) {
  return {_mm256_fmadd_pd(a.v, b.v, c.v)};
}

inline void two_prod(VecAvx2 a, VecAvx2 b, VecAvx2& hi, VecAvx2& lo) {
  __m256d p = _mm256_mul_pd(a.v, b.v);
  hi = {p};
  lo = {_mm256_fmsub_pd(a.v, b.v, p)};
}

inline VecAvx2 round_nearest(VecAvx2 a) {
  return {_mm256_round_pd(a.v,
                          _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
}

inline VecAvx2 ldexp_small(VecAvx2 y, VecAvx2 n) {
  __m128i ni = _mm256_cvtpd_epi32(n.v);
  __m256i wide = _mm256_cvtepi32_epi64(ni);
  __m256i bits = _mm256_slli_epi64(
      _mm256_add_epi64(wide, _mm256_set1_epi64x(1023)), 52);
  return {_mm256_mul_pd(y.v, _mm256_castsi256_pd(bits))};
}

inline void log_split(VecAvx2 x, VecAvx2& m, VecAvx2& k) {
  const __m256i mant_mask = _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL);
  const __m256i magic = _mm256_set1_epi64x(0x00095F6400000000LL);
  const __m256i top = _mm256_set1_epi64x(0x0010000000000000LL);
  const __m256i bias = _mm256_set1_epi64x(1023);
  __m256i bits = _mm256_castpd_si256(x.v);
  __m256i e = _mm256_sub_epi64(_mm256_srli_epi64(bits, 52), bias);
  __m256i frac = _mm256_and_si256(bits, mant_mask);
  __m256i i = _mm256_and_si256(_mm256_add_epi64(frac, magic), top);
  e = _mm256_add_epi64(e, _mm256_srli_epi64(i, 52));
  __m256i mbits = _mm256_or_si256(
      frac, _mm256_xor_si256(_mm256_set1_epi64x(0x3FF0000000000000LL), i));
  m = {_mm256_castsi256_pd(mbits)};
  __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  __m128i lo32 =
      _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(e, idx));
  k = {_mm256_cvtepi32_pd(lo32)};
}

#endif  // __AVX2__ && __FMA__

}  // namespace lvf2::simd
