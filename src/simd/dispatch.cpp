// Tier resolution and the public span wrappers. The tier is resolved
// exactly once (first kernel call or active_tier() query): the
// LVF2_SIMD environment variable picks a tier directly
// (avx2|sse2|scalar) or defers to CPUID (auto / unset). An
// unavailable explicit choice degrades to the best available tier
// rather than aborting, and the final choice lands in the run
// manifest as "simd.tier" so every artifact records which kernels
// produced it.

#include "simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/manifest.h"
#include "simd/kernel_table.h"

namespace lvf2::simd {

namespace {

using detail::KernelTable;

const KernelTable* table_for(Tier tier) {
  switch (tier) {
    case Tier::kAvx2:
      return detail::avx2_kernels();
    case Tier::kSse2:
      return detail::sse2_kernels();
    case Tier::kScalar:
      break;
  }
  return detail::scalar_kernels();
}

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Tier best_available() {
  if (detail::avx2_kernels() != nullptr && cpu_has_avx2_fma()) {
    return Tier::kAvx2;
  }
  if (detail::sse2_kernels() != nullptr) return Tier::kSse2;
  return Tier::kScalar;
}

Tier resolve_from_env() {
  const char* env = std::getenv("LVF2_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return best_available();
  }
  if (std::strcmp(env, "scalar") == 0) return Tier::kScalar;
  if (std::strcmp(env, "sse2") == 0 && tier_available(Tier::kSse2)) {
    return Tier::kSse2;
  }
  if (std::strcmp(env, "avx2") == 0 && tier_available(Tier::kAvx2)) {
    return Tier::kAvx2;
  }
  // Unknown token or unavailable tier: fall back rather than abort.
  return best_available();
}

std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<Tier> g_tier{Tier::kScalar};

void record_tier() {
  // Registered as a persistent provider, not a one-shot set_config:
  // the tier is resolved once per process but manifests start/stop
  // repeatedly (e.g. the cold and warm cache runs of one test
  // binary), and every session must record which kernels produced it.
  // The provider reads g_tier at emit time so a set_tier_for_testing
  // override is reflected too.
  obs::ManifestRecorder::instance().set_config_provider("simd.tier", [] {
    return std::string(tier_name(g_tier.load(std::memory_order_relaxed)));
  });
}
std::once_flag g_once;

const KernelTable& kernels() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  std::call_once(g_once, [] {
    const Tier tier = resolve_from_env();
    g_tier.store(tier, std::memory_order_relaxed);
    g_table.store(table_for(tier), std::memory_order_release);
    record_tier();
  });
  return *g_table.load(std::memory_order_acquire);
}

}  // namespace

Tier active_tier() {
  kernels();
  return g_tier.load(std::memory_order_relaxed);
}

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kAvx2:
      return "avx2";
    case Tier::kSse2:
      return "sse2";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

bool tier_available(Tier tier) {
  switch (tier) {
    case Tier::kAvx2:
      return detail::avx2_kernels() != nullptr && cpu_has_avx2_fma();
    case Tier::kSse2:
      return detail::sse2_kernels() != nullptr;
    case Tier::kScalar:
      break;
  }
  return true;
}

Tier set_tier_for_testing(Tier tier) {
  kernels();  // make sure the once-flag has fired
  const Tier prev = g_tier.load(std::memory_order_relaxed);
  if (tier_available(tier)) {
    g_tier.store(tier, std::memory_order_relaxed);
    g_table.store(table_for(tier), std::memory_order_release);
    record_tier();
  }
  return prev;
}

void normal_pdf(std::span<const double> x, std::span<double> out) {
  kernels().normal_pdf(x.data(), out.data(), x.size());
}

void normal_cdf(std::span<const double> x, std::span<double> out) {
  kernels().normal_cdf(x.data(), out.data(), x.size());
}

void normal_log_cdf(std::span<const double> x, std::span<double> out) {
  kernels().normal_log_cdf(x.data(), out.data(), x.size());
}

void normal_quantile(std::span<const double> p, std::span<double> out) {
  kernels().normal_quantile(p.data(), out.data(), p.size());
}

void exp(std::span<const double> x, std::span<double> out) {
  kernels().exp(x.data(), out.data(), x.size());
}

void owens_t(std::span<const double> h, double a, std::span<double> out) {
  kernels().owens_t(h.data(), a, out.data(), h.size());
}

void sn_log_pdf(double xi, double omega, double alpha,
                std::span<const double> x, std::span<double> out) {
  kernels().sn_log_pdf(xi, omega, alpha, x.data(), out.data(), x.size());
}

void sn_pdf(double xi, double omega, double alpha,
            std::span<const double> x, std::span<double> out) {
  kernels().sn_pdf(xi, omega, alpha, x.data(), out.data(), x.size());
}

void sn_cdf(double xi, double omega, double alpha,
            std::span<const double> x, std::span<double> out) {
  kernels().sn_cdf(xi, omega, alpha, x.data(), out.data(), x.size());
}

void esn_log_pdf(double xi, double omega, double alpha, double tau,
                 std::span<const double> x, std::span<double> out) {
  kernels().esn_log_pdf(xi, omega, alpha, tau, x.data(), out.data(),
                        x.size());
}

void esn_pdf(double xi, double omega, double alpha, double tau,
             std::span<const double> x, std::span<double> out) {
  kernels().esn_pdf(xi, omega, alpha, tau, x.data(), out.data(), x.size());
}

void normal_mu_sigma_log_pdf(double mu, double sigma,
                             std::span<const double> x,
                             std::span<double> out) {
  kernels().normal_mu_sigma_log_pdf(mu, sigma, x.data(), out.data(),
                                    x.size());
}

void em_responsibilities(double log_w_a, double log_w_b,
                         std::span<const double> lpa,
                         std::span<const double> lpb,
                         std::span<double> resp, std::span<double> lse) {
  kernels().em_responsibilities(log_w_a, log_w_b, lpa.data(), lpb.data(),
                                resp.data(), lse.data(), lpa.size());
}

void axpy(double a, std::span<const double> x, std::span<double> y) {
  kernels().axpy(a, x.data(), y.data(), x.size());
}

double sn_weighted_nll(double xi, double omega, double alpha,
                       std::span<const double> x,
                       std::span<const double> w) {
  return kernels().sn_nll(xi, omega, alpha, x.data(), w.data(), x.size());
}

}  // namespace lvf2::simd
