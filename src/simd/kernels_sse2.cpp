// SSE2 tier: kernels_impl.h instantiated over the 2-lane wrapper.
// SSE2 is the x86-64 baseline, so this TU needs no extra -march
// flags and the table is always available on x86-64 builds.

#include "simd/kernel_table.h"

#if defined(__x86_64__) || defined(_M_X64)

#include "simd/kernels_impl.h"
#include "simd/vec.h"

namespace lvf2::simd::detail {

namespace {
constexpr KernelTable kSse2Table = {
    k_normal_pdf<VecSse2>,
    k_normal_cdf<VecSse2>,
    k_normal_log_cdf<VecSse2>,
    k_normal_quantile<VecSse2>,
    k_exp<VecSse2>,
    k_owens_t<VecSse2>,
    k_sn_log_pdf<VecSse2>,
    k_sn_pdf<VecSse2>,
    k_sn_cdf<VecSse2>,
    k_esn_log_pdf<VecSse2>,
    k_esn_pdf<VecSse2>,
    k_normal_mu_sigma_log_pdf<VecSse2>,
    k_em_responsibilities<VecSse2>,
    k_axpy<VecSse2>,
    k_sn_nll<VecSse2>,
};
}  // namespace

const KernelTable* sse2_kernels() { return &kSse2Table; }

}  // namespace lvf2::simd::detail

#else  // non-x86: only the scalar tier exists.

namespace lvf2::simd::detail {
const KernelTable* sse2_kernels() { return nullptr; }
}  // namespace lvf2::simd::detail

#endif
