#pragma once
// Vectorized double-precision exp / log / erfc and the normal-CDF
// family built on them, templated on the lane wrappers in vec.h.
// Only the per-tier translation units include this header.
//
// Accuracy (validated against long-double libm over dense sweeps):
//   vexp   <= 1 ULP over the full finite range (incl. subnormal
//            results via two-step 2^n scaling),
//   vlog   <= 1 ULP (incl. subnormal inputs via 2^54 prescale),
//   verfc  <= 8 ULP on [-28, 28] sweeps (<= 2 ULP for |t| < 0.84375,
//            which is where the edge-input gates sit).
//
// The exp kernel is the classic fdlibm e_exp reduction generalized to
// exp(hi + lo): the extra low word absorbs the residual of the
// -z^2 - 0.5625 + correction argument assembly, so the tail branch
// pays a single exp on an effectively exact argument.
// erfc follows the fdlibm s_erf.c branch layout: a compensated Taylor
// series (cancellation in 1 - erf removed with an exact two-product
// and a Sterbenz-exact 1 - p) for t < 0.84375, the (1 - erx) -
// P(s)/Q(s) rational around t = 1, and for t >= 1.25 the exp form
//   erfc(t) = exp(-z^2 - 0.5625 + (z - t)(z + t) + R(s)/S(s)) / t,
// s = 1/t^2, with z = t truncated to its high mantissa word so z^2 is
// exact. The tail's log-domain argument (hi, lo) is exposed
// separately: log Phi composes it directly and never exponentiates,
// which is what makes the batched EM objective fast. The around-one
// rational is fdlibm's; the tail rationals are least-squares fits in
// a rescaled variable (see the table comments); the Taylor table is
// exact rationals rounded once.

#include <bit>
#include <cstdint>

#include "simd/vec.h"

namespace lvf2::simd {

// fdlibm exp reduction constants.
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kInvLn2 = 1.44269504088896338700e+00;
inline constexpr double kExpP1 = 1.66666666666666019037e-01;
inline constexpr double kExpP2 = -2.77777777770155933842e-03;
inline constexpr double kExpP3 = 6.61375632143793436117e-05;
inline constexpr double kExpP4 = -1.65339022054652515390e-06;
inline constexpr double kExpP5 = 4.13813679705723846039e-08;

// fdlibm log polynomial.
inline constexpr double kLg1 = 6.666666666666735130e-01;
inline constexpr double kLg2 = 3.999999999940941908e-01;
inline constexpr double kLg3 = 2.857142874366239149e-01;
inline constexpr double kLg4 = 2.222219843214978396e-01;
inline constexpr double kLg5 = 1.818357216161805012e-01;
inline constexpr double kLg6 = 1.531383769920937332e-01;
inline constexpr double kLg7 = 1.479819860511658591e-01;

inline constexpr double kTwoOverSqrtPi = 1.12837916709551257390;

// fdlibm s_erf.c rational tables. erx = erf(1) rounded to double.
inline constexpr double kErx = 8.45062911510467529297e-01;
// [0.84375, 1.25): erf(t) = erx + P(s)/Q(s), s = t - 1.
inline constexpr double kErfcPa[7] = {
    -2.36211856075265944077e-03, 4.14856118683748331666e-01,
    -3.72207876035701323847e-01, 3.18346619901161753674e-01,
    -1.10894694282396677476e-01, 3.54783043256182359371e-02,
    -2.16637559486879084300e-03};
inline constexpr double kErfcQa[7] = {
    0.0, 1.06420880400844228286e-01, 5.40397917702171048937e-01,
    7.18286544141962662868e-02, 1.26171219808761642112e-01,
    1.36370839120290507362e-02, 1.19844998467991074170e-02};
// Tail rational tables approximate f(s) = log(t erfc(t)) + t^2 +
// 0.5625 as R(u)/S(u) in the affinely rescaled u = s*scale - shift
// (u in [-1, 1] per branch, which keeps the Horner chains perfectly
// conditioned). Fitted here by iterated linearized least squares on
// Chebyshev nodes against long-double erfcl; max |f error| 2.5e-16
// (branch a) / 1.1e-16 (branch b) over 40k-point validation sweeps.
// t in [1.25, 1/0.35): u = s*kTailAScale - kTailAShift.
inline constexpr double kTailAScale = 3.8647342995169085;
inline constexpr double kTailAShift = 1.4734299516908216;
inline constexpr double kErfcRa[9] = {
    -0.14917905895199052,     -0.2659263657017078,
    -0.12804612338668964,     0.036760413267950133,
    0.057410732959224386,     0.02199564183128478,
    0.0038252065149139429,    0.00029610000475123352,
    7.532589254911071e-06};
inline constexpr double kErfcSa[10] = {
    0.0,                      1.2916726848070024,
    0.28777178979898571,      -0.3188227752106263,
    -0.22368672393091513,     -0.058285567509747588,
    -0.0070235884940768115,   -0.00035750314187065439,
    -4.9715776656995278e-06,  1.2844465937316722e-08};
// t in [1/0.35, 27.25): u = s*kTailBScale - kTailBShift.
inline constexpr double kTailBScale = 16.508009288447276;
inline constexpr double kTailBShift = 1.0222311378347915;
inline constexpr double kErfcRb[7] = {
    -0.038732422748436003,    -0.074571311261605766,
    -0.05369613207925885,     -0.01838263490794434,
    -0.0030982117659909556,   -0.00023531708124410993,
    -5.8756446030425772e-06};
inline constexpr double kErfcSb[8] = {
    0.0,                      1.2427286011380925,
    0.5783861010117004,       0.12557181480855023,
    0.01284040352031858,      0.00053984989256415867,
    5.6990304722153501e-06,   -1.7344915771406392e-08};
// Rational-table split point, 1/0.35.
inline constexpr double kErfcTailSplit = 2.857142857142857;
// Clears the low mantissa word so z * z is exact (<= 26 significant
// bits squared).
inline constexpr double kHiWordMask =
    std::bit_cast<double>(std::uint64_t{0xFFFFFFFF00000000ULL});

// log Phi middle band |x| <= 3.5: log Phi(x) = -exp(h), h = R(u)/S(u),
// u = x * kLogPhiScale -/+ 1. Fitting h = log(-log Phi(x)) instead of
// log Phi itself keeps the target O(1) across a band where |log Phi|
// spans four decades, so an absolute-error rational fit gives a
// near-machine-precision relative error after the exp. Two same-degree
// fits split at x = 0 (one wide rational stalls at ~5e-14); matching
// degrees lets mixed-sign blocks select coefficients per lane with
// blends instead of a second Horner chain. Least-squares fits (same
// Sanathanan-Koerner procedure as the erfc tail tables); max |dh| is
// 1.2e-15 on the negative half and 4.9e-15 on the positive half.
inline constexpr double kLogPhiScale = 0.5714285714285714;  // 2 / 3.5
// x in [-3.5, 0): u = x * scale + 1.
inline constexpr double kLogPhiRn[10] = {
    1.1685729570486181,       -2.2411047489888318,
    0.72956994003977493,      0.8164239763136093,
    -0.87270437315231209,     0.37247903850240444,
    -0.085969843740532431,    0.010764572856898264,
    -0.00062922385556554348,  1.063377785731622e-05};
inline constexpr double kLogPhiSn[9] = {
    -0.91534125700484692,     -0.060252269322478527,
    0.48531818518412173,      -0.31496668944950623,
    0.10200926709424062,      -0.018625762502690272,
    0.0018390404758606793,    -8.1136530039228888e-05,
    9.0779498311838675e-07};
// x in [0, 3.5]: u = x * scale - 1.
inline constexpr double kLogPhiRp[10] = {
    -3.1970258303472301,      -1.9635233194247006,
    -1.6567406185748126,      -1.5150134988681754,
    -0.17031686485546579,     -0.35236791890152713,
    0.013857653479311061,     -0.02558060136019091,
    0.0012844845936291448,    -0.00032131080829860231};
inline constexpr double kLogPhiSp[9] = {
    -0.58918585922802991,     0.84973335069964107,
    -0.37661832996264388,     0.22961228825403726,
    -0.071998722599627529,    0.02176423223732642,
    -0.0040473416196619098,   0.00051273099455936214,
    -3.0310713636744035e-05};

// Taylor coefficients of (erf(t)/((2/sqrt(pi)) t) - 1) in t^2:
// (-1)^k / (k! (2k+1)), k = 1..18 (exact rationals, rounded once).
inline constexpr double kErfcTaylor[19] = {
    0.0,
    -0.33333333333333331, 0.10000000000000001, -0.023809523809523808,
    0.0046296296296296294, -0.00075757575757575758, 0.00010683760683760684,
    -1.3227513227513228e-05, 1.4589169000933706e-06, -1.4503852223150468e-07,
    1.3122532963802806e-08, -1.0892221037148573e-09, 8.3507027951472397e-11,
    -5.9477940136376354e-12, 3.9554295164585257e-13, -2.4668270102644571e-14,
    1.4483264643598138e-15, -8.0327350124157733e-17, 4.2214072888070882e-18};

/// exp(hi + lo) for hi in [-746, 710] and |lo| <= ~1e-13 (the caller
/// clamps the range and owns specials). fdlibm kernel; the low word
/// rides through the t_lo correction term.
template <class V>
V exp_dd(V hi, V lo) {
  const V n = round_nearest(hi * V::broadcast(kInvLn2));
  const V t_hi = hi - n * V::broadcast(kLn2Hi);
  const V t_lo = n * V::broadcast(kLn2Lo) - lo;
  const V r = t_hi - t_lo;
  const V t = r * r;
  V p = mul_add(t, V::broadcast(kExpP5), V::broadcast(kExpP4));
  p = mul_add(t, p, V::broadcast(kExpP3));
  p = mul_add(t, p, V::broadcast(kExpP2));
  p = mul_add(t, p, V::broadcast(kExpP1));
  const V c = r - t * p;
  const V one = V::broadcast(1.0);
  const V y =
      one - ((t_lo - (r * c) / (V::broadcast(2.0) - c)) - t_hi);
  // 2^n scaling, split in two steps when |n| > 1021 so the scale
  // factor itself stays a normal power of two (subnormal results
  // round correctly through the final multiply).
  const V lim = V::broadcast(1021.0);
  const V big = V::broadcast(512.0);
  V shift = and_v(cmp_lt(lim, n), big);
  shift = blend_v(cmp_lt(n, neg(lim)), neg(big), shift);
  return ldexp_small(ldexp_small(y, n - shift), shift);
}

/// exp(x) with full special handling: NaN propagates, overflow to
/// +inf, underflow to 0.
template <class V>
V vexp(V x) {
  const V nan_mask = cmp_nan(x);
  const V over = cmp_lt(V::broadcast(709.782712893384), x);
  const V under = cmp_lt(x, V::broadcast(-745.2));
  // Clamp the core's input so the reduction stays in range; the
  // clamped lanes are overwritten below.
  V xc = min_v(max_v(blend_v(nan_mask, V::zero(), x),
                     V::broadcast(-745.0)),
               V::broadcast(709.0));
  V r = exp_dd(xc, V::zero());
  r = blend_v(over, V::broadcast(1.0) / V::zero(), r);
  r = andnot_v(under, r);
  return blend_v(nan_mask, x, r);
}

/// log(x) with full special handling (x < 0 -> NaN, 0 -> -inf,
/// +inf -> +inf, NaN propagates, subnormals prescaled by 2^54).
template <class V>
V vlog(V x) {
  const V nan_mask = cmp_nan(x);
  const V zero_mask = cmp_eq(x, V::zero());
  const V neg_mask = cmp_lt(x, V::zero());
  const V inf_mask = cmp_eq(x, V::broadcast(1.0) / V::zero());
  const V sub_mask =
      andnot_v(or_v(zero_mask, neg_mask),
               cmp_lt(x, V::broadcast(2.2250738585072014e-308)));
  // Make every lane a positive normal number for the core (specials
  // are blended back at the end).
  V xs = blend_v(sub_mask, x * V::broadcast(0x1p54), x);
  xs = blend_v(or_v(or_v(nan_mask, or_v(zero_mask, neg_mask)), inf_mask),
               V::broadcast(1.0), xs);
  V m, k;
  log_split(xs, m, k);
  k = k - and_v(sub_mask, V::broadcast(54.0));
  const V one = V::broadcast(1.0);
  const V f = m - one;
  const V hfsq = V::broadcast(0.5) * f * f;
  const V s = f / (V::broadcast(2.0) + f);
  const V z = s * s;
  const V w = z * z;
  const V t1 =
      w * mul_add(w, mul_add(w, V::broadcast(kLg6), V::broadcast(kLg4)),
                  V::broadcast(kLg2));
  const V t2 =
      z * mul_add(
              w,
              mul_add(w, mul_add(w, V::broadcast(kLg7), V::broadcast(kLg5)),
                      V::broadcast(kLg3)),
              V::broadcast(kLg1));
  const V R = t2 + t1;
  V r = k * V::broadcast(kLn2Hi) -
        ((hfsq - (s * (hfsq + R) + k * V::broadcast(kLn2Lo))) - f);
  const V ninf = neg(one) / V::zero();
  r = blend_v(zero_mask, ninf, r);
  r = blend_v(neg_mask, V::zero() / V::zero(), r);
  r = blend_v(inf_mask, x, r);
  return blend_v(nan_mask, x, r);
}

/// log(1 + y) for y in [0, 1]: log of the rounded sum plus the exact
/// residual correction (y - (s - 1))/s; ~2 ULP, where a raw
/// vlog(1 + y) would lose all digits for y near machine epsilon.
template <class V>
V vlog1p_unit(V y) {
  const V one = V::broadcast(1.0);
  const V s = one + y;
  const V c = (one - s) + y;  // exact: Sterbenz on 1 - s, then + y
  return vlog(s) + c / s;
}

/// erfc on [0, 0.84375): 1 - (2/sqrt(pi)) t (1 + T(t^2)) with the
/// cancellation compensated: p = (2/sqrt(pi)) t as an exact product
/// pair, 1 - p exact by Sterbenz for p >= 0.5, series and residual
/// folded into one final subtraction.
template <class V>
V erfc_taylor(V t) {
  const V q = t * t;
  V T = V::zero();
  for (int k = 18; k >= 1; --k) {
    T = mul_add(T, q, V::broadcast(kErfcTaylor[k]));
  }
  T = T * q;
  const V s = V::broadcast(kTwoOverSqrtPi);
  V p, pe;
  two_prod(s, t, p, pe);
  const V one = V::broadcast(1.0);
  const V d = one - p;
  return d - mul_add(p, T, pe * (one + T));
}

/// erfc on [0.84375, 1.25): (1 - erx) - P(s)/Q(s), s = t - 1
/// (fdlibm's dedicated around-one rational; no exp needed).
template <class V>
V erfc_mid(V t) {
  const V one = V::broadcast(1.0);
  const V s = t - one;
  V P = V::broadcast(kErfcPa[6]);
  for (int k = 5; k >= 0; --k) {
    P = mul_add(P, s, V::broadcast(kErfcPa[k]));
  }
  V Q = V::broadcast(kErfcQa[6]);
  for (int k = 5; k >= 1; --k) {
    Q = mul_add(Q, s, V::broadcast(kErfcQa[k]));
  }
  Q = mul_add(Q, s, one);
  return (one - V::broadcast(kErx)) - P / Q;
}

/// Log-domain tail core for t in [1.25, 27.25): hi + lo =
/// log(t erfc(t)) = -z^2 - 0.5625 + (z - t)(z + t) + R(s)/S(s) with
/// z = t truncated so z^2 is exact. Callers either exponentiate the
/// pair through exp_dd (erfc itself) or sum it directly (log Phi).
template <class V>
void erfc_tail_log(V t, V& hi, V& lo) {
  const V one = V::broadcast(1.0);
  const V s = one / (t * t);
  const V m_ra = cmp_lt(t, V::broadcast(kErfcTailSplit));
  const V m_rb = cmp_ge(t, V::broadcast(kErfcTailSplit));
  V R = V::zero();
  V S = one;
  if (any(m_ra)) {
    const V u = mul_add(s, V::broadcast(kTailAScale),
                        V::broadcast(-kTailAShift));
    V Ra = V::broadcast(kErfcRa[8]);
    for (int k = 7; k >= 0; --k) {
      Ra = mul_add(Ra, u, V::broadcast(kErfcRa[k]));
    }
    V Sa = V::broadcast(kErfcSa[9]);
    for (int k = 8; k >= 1; --k) {
      Sa = mul_add(Sa, u, V::broadcast(kErfcSa[k]));
    }
    Sa = mul_add(Sa, u, one);
    R = blend_v(m_ra, Ra, R);
    S = blend_v(m_ra, Sa, S);
  }
  if (any(m_rb)) {
    const V u = mul_add(s, V::broadcast(kTailBScale),
                        V::broadcast(-kTailBShift));
    V Rb = V::broadcast(kErfcRb[6]);
    for (int k = 5; k >= 0; --k) {
      Rb = mul_add(Rb, u, V::broadcast(kErfcRb[k]));
    }
    V Sb = V::broadcast(kErfcSb[7]);
    for (int k = 6; k >= 1; --k) {
      Sb = mul_add(Sb, u, V::broadcast(kErfcSb[k]));
    }
    Sb = mul_add(Sb, u, one);
    R = blend_v(m_rb, Rb, R);
    S = blend_v(m_rb, Sb, S);
  }
  const V z = and_v(t, V::broadcast(kHiWordMask));
  const V a1 = neg(z * z) - V::broadcast(0.5625);
  const V a2 = (z - t) * (z + t) + R / S;
  hi = a1 + a2;
  lo = (a1 - hi) + a2;  // |a1| >= |a2|: exact two-sum residual
}

/// erfc on [1.25, 27.25): single exp on the exact-argument pair.
template <class V>
V erfc_tail(V t) {
  V hi, lo;
  erfc_tail_log(t, hi, lo);
  return exp_dd(hi, lo) / t;
}

/// erfc(t) over the full double range with specials: NaN propagates,
/// erfc(-inf) = 2, erfc(+inf) = 0.
template <class V>
V verfc(V t) {
  const V nan_mask = cmp_nan(t);
  const V a = abs_v(blend_v(nan_mask, V::zero(), t));
  const V m_taylor = cmp_lt(a, V::broadcast(0.84375));
  const V m_mid = andnot_v(m_taylor, cmp_lt(a, V::broadcast(1.25)));
  const V m_tail = andnot_v(or_v(m_taylor, m_mid),
                            cmp_lt(a, V::broadcast(27.25)));
  V r = V::zero();
  if (any(m_taylor)) r = blend_v(m_taylor, erfc_taylor(a), r);
  if (any(m_mid)) r = blend_v(m_mid, erfc_mid(a), r);
  if (any(m_tail)) {
    // Clamp discarded lanes so exp_dd's reduction stays in range.
    r = blend_v(m_tail, erfc_tail(min_v(a, V::broadcast(27.25))), r);
  }
  const V neg_mask = cmp_lt(t, V::zero());
  r = blend_v(neg_mask, V::broadcast(2.0) - r, r);
  return blend_v(nan_mask, t, r);
}

/// Phi(x) = erfc(-x/sqrt(2))/2. The division uses the same constant
/// as stats::normal_cdf so both tiers square-up on identical erfc
/// arguments.
template <class V>
V vnormal_cdf(V x) {
  const V t = neg(x) / V::broadcast(1.41421356237309514547462185873883);
  return V::broadcast(0.5) * verfc(t);
}

/// phi(x) = exp(-x^2/2)/sqrt(2 pi); same expression shape as
/// stats::normal_pdf.
template <class V>
V vnormal_pdf(V x) {
  const V arg = neg(V::broadcast(0.5) * x * x);
  return vexp(arg) /
         V::broadcast(2.506628274631000502415765284811045253);
}

/// h = R(u)/S(u) for one fixed half-band coefficient table.
template <class V>
V logphi_h(V u, const double (&rc)[10], const double (&sc)[9]) {
  V R = V::broadcast(rc[9]);
  for (int k = 8; k >= 0; --k) R = mul_add(R, u, V::broadcast(rc[k]));
  V S = V::broadcast(sc[8]);
  for (int k = 7; k >= 0; --k) S = mul_add(S, u, V::broadcast(sc[k]));
  S = mul_add(S, u, V::broadcast(1.0));
  return R / S;
}

/// log Phi on |x| <= 3.5: -exp(R(u)/S(u)), the h-transform band.
/// Callers stream sorted grids, so whole blocks usually share a sign:
/// those take a pure Horner pair with the half-band table as direct
/// broadcast constants. Mixed-sign blocks (at most one per array)
/// select coefficients per lane with blends off the critical chain.
template <class V>
V logphi_mid(V x) {
  constexpr int kAllLanes = (1 << V::kLanes) - 1;
  const V m_neg = cmp_lt(x, V::zero());
  const int neg_bits = mask_bits(m_neg);
  const V one = V::broadcast(1.0);
  V h;
  if (neg_bits == 0) {
    h = logphi_h(mul_add(x, V::broadcast(kLogPhiScale), neg(one)),
                 kLogPhiRp, kLogPhiSp);
  } else if (neg_bits == kAllLanes) {
    h = logphi_h(mul_add(x, V::broadcast(kLogPhiScale), one), kLogPhiRn,
                 kLogPhiSn);
  } else {
    const V u = mul_add(x, V::broadcast(kLogPhiScale),
                        blend_v(m_neg, one, neg(one)));
    V R = blend_v(m_neg, V::broadcast(kLogPhiRn[9]),
                  V::broadcast(kLogPhiRp[9]));
    for (int k = 8; k >= 0; --k) {
      R = mul_add(R, u,
                  blend_v(m_neg, V::broadcast(kLogPhiRn[k]),
                          V::broadcast(kLogPhiRp[k])));
    }
    V S = blend_v(m_neg, V::broadcast(kLogPhiSn[8]),
                  V::broadcast(kLogPhiSp[8]));
    for (int k = 7; k >= 0; --k) {
      S = mul_add(S, u,
                  blend_v(m_neg, V::broadcast(kLogPhiSn[k]),
                          V::broadcast(kLogPhiSp[k])));
    }
    S = mul_add(S, u, one);
    h = R / S;
  }
  // h in [-34.7, 3.1]: exp_dd's reduction range is safe by band.
  return neg(exp_dd(h, V::zero()));
}

/// log Phi on [-36.5, -3.5): the erfc tail's log-domain pair summed
/// directly, log Phi = ln(1/2) + (hi + lo) - log t — no exp and no
/// log-of-small cancellation.
template <class V>
V logphi_lower(V x) {
  const V t = neg(x) / V::broadcast(1.41421356237309514547462185873883);
  const V tc = min_v(max_v(t, V::broadcast(1.25)), V::broadcast(27.25));
  V hi, lo;
  erfc_tail_log(tc, hi, lo);
  return (hi - vlog(tc)) + (lo - V::broadcast(0.69314718055994530942));
}

/// log Phi on x > 3.5: log(1 - Q) = -Q (1 + Q/2 + ... + Q^5/6) with
/// Q = Phi(-x) = erfc(x/sqrt(2))/2 <= 2.4e-4, so the truncated series
/// is exact to well below one ulp and no vlog is needed.
template <class V>
V logphi_upper(V x) {
  const V t = x / V::broadcast(1.41421356237309514547462185873883);
  const V tc = min_v(max_v(t, V::broadcast(1.25)), V::broadcast(27.25));
  V hi, lo;
  erfc_tail_log(tc, hi, lo);
  const V q = V::broadcast(0.5) * (exp_dd(hi, lo) / tc);
  V p = V::broadcast(1.0 / 6.0);
  p = mul_add(p, q, V::broadcast(0.2));
  p = mul_add(p, q, V::broadcast(0.25));
  p = mul_add(p, q, V::broadcast(1.0 / 3.0));
  p = mul_add(p, q, V::broadcast(0.5));
  p = mul_add(p, q, V::broadcast(1.0));
  return neg(q * p);
}

/// log Phi(x), four bands with homogeneous-block fast paths. The
/// banded-per-lane general path is latency-bound — serial Horner
/// chains behind unpredictable if(any) branches — so blocks whose
/// lanes all share a band (the common case: callers stream sorted
/// grids, so band membership changes at most twice per array) take a
/// single well-predicted branch into a branchless kernel:
///  - |x| <= 3.5: the h-transform rational (no vlog, one exp);
///  - [-36.5, -3.5): log-domain erfc tail summed directly;
///  - x > 3.5: -Q series(Q), Q = Phi(-x) — no vlog;
///  - x < -36.5: Mills asymptotic series, as stats::normal_log_cdf.
template <class V>
V vnormal_log_cdf(V x) {
  constexpr int kAllLanes = (1 << V::kLanes) - 1;
  const V nan_mask = cmp_nan(x);
  const V xs = blend_v(nan_mask, V::zero(), x);
  const V m_mid = cmp_le(abs_v(xs), V::broadcast(3.5));
  if (mask_bits(m_mid) == kAllLanes) {
    return blend_v(nan_mask, x, logphi_mid(xs));
  }
  // NaN lanes park at xs = 0, inside m_mid, so the homogeneous lower
  // and upper paths below are NaN-free and skip the final blend.
  const V m_lower = cmp_lt(xs, V::broadcast(-3.5));
  const V m_series = cmp_lt(xs, V::broadcast(-36.5));
  const V m_logtail = andnot_v(m_series, m_lower);
  if (mask_bits(m_logtail) == kAllLanes) return logphi_lower(xs);
  const V m_upper = cmp_lt(V::broadcast(3.5), xs);
  if (mask_bits(m_upper) == kAllLanes) return logphi_upper(xs);
  // Mixed block (band seams, deep tails): compute each band on
  // range-clamped inputs and blend per lane.
  const V lo_clamp = V::broadcast(-3.5);
  const V hi_clamp = V::broadcast(3.5);
  V r = logphi_mid(min_v(max_v(xs, lo_clamp), hi_clamp));
  if (any(m_logtail)) {
    r = blend_v(m_logtail, logphi_lower(min_v(xs, lo_clamp)), r);
  }
  if (any(m_upper)) {
    r = blend_v(m_upper, logphi_upper(max_v(xs, hi_clamp)), r);
  }
  if (any(m_series)) {
    const V x2 = xs * xs;
    const V one = V::broadcast(1.0);
    const V x4 = x2 * x2;
    const V x6 = x4 * x2;
    const V series = one - one / x2 + V::broadcast(3.0) / x4 -
                     V::broadcast(15.0) / x6 +
                     V::broadcast(105.0) / (x4 * x4);
    const V sr =
        neg(V::broadcast(0.5)) * x2 -
        vlog(neg(xs) *
             V::broadcast(2.506628274631000502415765284811045253)) +
        vlog(series);
    r = blend_v(m_series, sr, r);
  }
  return blend_v(nan_mask, x, r);
}

}  // namespace lvf2::simd
