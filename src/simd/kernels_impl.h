#pragma once
// Templated bodies of the SIMD batch kernels, instantiated once per
// ISA by kernels_sse2.cpp / kernels_avx2.cpp. Layout of every kernel:
// whole vectors through the vmath.h lane code, the < kLanes tail (and
// any special-value lanes) through the scalar stats:: functions — the
// tail is therefore exact, and special handling (NaN/inf propagation)
// matches the scalar reference by construction.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "simd/vmath.h"
#include "stats/special_functions.h"

namespace lvf2::simd::detail {

template <class V>
void k_normal_pdf(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    vnormal_pdf(V::load(x + i)).store(out + i);
  }
  for (; i < n; ++i) out[i] = stats::normal_pdf(x[i]);
}

template <class V>
void k_normal_cdf(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    vnormal_cdf(V::load(x + i)).store(out + i);
  }
  for (; i < n; ++i) out[i] = stats::normal_cdf(x[i]);
}

template <class V>
void k_normal_log_cdf(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    vnormal_log_cdf(V::load(x + i)).store(out + i);
  }
  for (; i < n; ++i) out[i] = stats::normal_log_cdf(x[i]);
}

template <class V>
void k_exp(const double* x, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    vexp(V::load(x + i)).store(out + i);
  }
  for (; i < n; ++i) out[i] = std::exp(x[i]);
}

// Acklam inverse-normal coefficients (same values as the scalar
// implementation in stats/special_functions.cpp).
inline constexpr double kQa[6] = {
    -3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
    1.383577518672690e+02,  -3.066479806614716e+01, 2.506628277459239e+00};
inline constexpr double kQb[5] = {
    -5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
    6.680131188771972e+01,  -1.328068155288572e+01};
inline constexpr double kQc[6] = {
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
    -2.549732539343734e+00, 4.374664141464968e+00,  2.938163982698783e+00};
inline constexpr double kQd[4] = {
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
    3.754408661907416e+00};

template <class V>
V acklam_tail_poly(V q) {
  V num = V::broadcast(kQc[0]);
  for (int j = 1; j < 6; ++j) num = mul_add(num, q, V::broadcast(kQc[j]));
  V den = V::broadcast(kQd[0]);
  for (int j = 1; j < 4; ++j) den = mul_add(den, q, V::broadcast(kQd[j]));
  den = mul_add(den, q, V::broadcast(1.0));
  return num / den;
}

template <class V>
V vnormal_quantile(V p) {
  const V half = V::broadcast(0.5);
  const V one = V::broadcast(1.0);
  const V plow = V::broadcast(0.02425);
  const V nan_mask = cmp_nan(p);
  const V lo_inf = cmp_le(andnot_v(nan_mask, p), V::zero());
  const V hi_inf = cmp_ge(p, one);
  // Central rational approximation (always evaluated).
  const V q = p - half;
  const V r = q * q;
  V num = V::broadcast(kQa[0]);
  for (int j = 1; j < 6; ++j) num = mul_add(num, r, V::broadcast(kQa[j]));
  V den = V::broadcast(kQb[0]);
  for (int j = 1; j < 5; ++j) den = mul_add(den, r, V::broadcast(kQb[j]));
  den = mul_add(den, r, one);
  V x = num * q / den;
  // Tails: clamp the log argument on non-tail lanes so vlog stays in
  // range; the result is blended away there.
  const V m_lo = andnot_v(or_v(nan_mask, lo_inf), cmp_lt(p, plow));
  if (any(m_lo)) {
    const V ql = sqrt_v(neg(V::broadcast(2.0)) *
                        vlog(max_v(p, V::broadcast(1e-320))));
    x = blend_v(m_lo, acklam_tail_poly(ql), x);
  }
  const V m_hi = andnot_v(hi_inf, cmp_lt(one - plow, p));
  if (any(m_hi)) {
    const V qh = sqrt_v(neg(V::broadcast(2.0)) *
                        vlog(max_v(one - p, V::broadcast(1e-320))));
    x = blend_v(m_hi, neg(acklam_tail_poly(qh)), x);
  }
  // One Halley refinement against the exact CDF (same update as
  // stats::normal_quantile).
  const V e = vnormal_cdf(x) - p;
  const V u = e * V::broadcast(2.506628274631000502415765284811045253) *
              vexp(half * x * x);
  x = x - u / (one + half * x * u);
  const V inf = one / V::zero();
  x = blend_v(lo_inf, neg(inf), x);
  x = blend_v(hi_inf, inf, x);
  return blend_v(nan_mask, p, x);
}

template <class V>
void k_normal_quantile(const double* p, double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    vnormal_quantile(V::load(p + i)).store(out + i);
  }
  for (; i < n; ++i) out[i] = stats::normal_quantile(p[i]);
}

// 64-point Gauss-Legendre nodes/weights on [-1, 1] (symmetric half) —
// the same scheme as the scalar owens_t_quad in
// stats/special_functions.cpp; the tables are frozen math constants.
inline constexpr double kGlNodes[32] = {
    0.0243502926634244, 0.0729931217877990, 0.1214628192961206,
    0.1696444204239928, 0.2174236437400071, 0.2646871622087674,
    0.3113228719902110, 0.3572201583376681, 0.4022701579639916,
    0.4463660172534641, 0.4894031457070530, 0.5312794640198946,
    0.5718956462026340, 0.6111553551723933, 0.6489654712546573,
    0.6852363130542333, 0.7198818501716109, 0.7528199072605319,
    0.7839723589433414, 0.8132653151227975, 0.8406292962525803,
    0.8659993981540928, 0.8893154459951141, 0.9105221370785028,
    0.9295691721319396, 0.9464113748584028, 0.9610087996520538,
    0.9733268277899110, 0.9833362538846260, 0.9910133714767443,
    0.9963401167719553, 0.9993050417357722};
inline constexpr double kGlWeights[32] = {
    0.0486909570091397, 0.0485754674415034, 0.0483447622348030,
    0.0479993885964583, 0.0475401657148303, 0.0469681828162100,
    0.0462847965813144, 0.0454916279274181, 0.0445905581637566,
    0.0435837245293235, 0.0424735151236536, 0.0412625632426235,
    0.0399537411327203, 0.0385501531786156, 0.0370551285402400,
    0.0354722132568824, 0.0338051618371416, 0.0320579283548516,
    0.0302346570724025, 0.0283396726142595, 0.0263774697150547,
    0.0243527025687109, 0.0222701738083833, 0.0201348231535302,
    0.0179517157756973, 0.0157260304760247, 0.0134630478967186,
    0.0111681394601311, 0.0088467598263639, 0.0065044579689784,
    0.0041470332605625, 0.0017832807216964};

/// Vector form of stats::owens_t_quad with the deep-tail clip folded
/// into the per-lane integration half-width.
template <class V>
V vowens_quad(V h, V a) {
  // h >= 8 clip: a <- min(a, 10/h), mirroring the scalar quadrature.
  const V m_deep = cmp_ge(h, V::broadcast(8.0));
  if (any(m_deep)) {
    a = blend_v(m_deep, min_v(a, V::broadcast(10.0) / h), a);
  }
  const V half = V::broadcast(0.5) * a;
  const V h2 = neg(V::broadcast(0.5)) * h * h;
  const V one = V::broadcast(1.0);
  V sum = V::zero();
  for (int i = 0; i < 32; ++i) {
    const V node = V::broadcast(kGlNodes[i]);
    const V xp = half * (one + node);
    const V xm = half * (one - node);
    const V dp = one + xp * xp;
    const V dm = one + xm * xm;
    const V fp = vexp(h2 * dp) / dp;
    const V fm = vexp(h2 * dm) / dm;
    sum = sum + V::broadcast(kGlWeights[i]) * (fp + fm);
  }
  return sum * half /
         V::broadcast(6.283185307179586476925286766559005768);
}

/// Precomputed per-call state for Owen's T with fixed a. All scalar
/// prep uses the std:: / stats:: functions so special lanes that get
/// fixed up scalar match stats::owens_t exactly.
struct OwensPrep {
  double sign = 1.0;
  double aa = 0.0;        // |a|
  bool a_zero = false;
  bool a_inf = false;
  bool a_nan = false;
  bool reduce = false;    // |a| > 1 -> complementary reduction
  double inv_a = 0.0;
  double h0_value = 0.0;  // sign * atan(|a|) / (2 pi)
};

inline OwensPrep owens_prepare(double a) {
  OwensPrep p;
  if (std::isnan(a)) {
    p.a_nan = true;
    return p;
  }
  p.sign = (a < 0.0) ? -1.0 : 1.0;
  p.aa = std::fabs(a);
  p.a_zero = (p.aa == 0.0);
  p.a_inf = std::isinf(p.aa);
  p.reduce = (p.aa > 1.0) && !p.a_inf;
  p.inv_a = p.reduce ? 1.0 / p.aa : 0.0;
  if (!p.a_zero) {
    // atan(inf) = pi/2, so this also covers the a = +-inf case the
    // scalar h == 0 branch reaches first.
    p.h0_value = p.sign * std::atan(p.aa) / (2.0 * stats::kPi);
  }
  return p;
}

/// Owen's T over one vector of h lanes, a fixed by `prep`. Handles
/// h = 0 and +-inf lanes inline; NaN h lanes yield NaN via blend.
template <class V>
V vowens_t(V h, const OwensPrep& prep) {
  const V nan_mask = cmp_nan(h);
  const V ha = abs_v(blend_v(nan_mask, V::zero(), h));
  V t;
  if (prep.a_inf) {
    t = V::broadcast(0.5) * vnormal_cdf(neg(ha));
  } else if (prep.reduce) {
    const V heff = V::broadcast(prep.aa) * ha;
    const V quad = vowens_quad(heff, V::broadcast(prep.inv_a));
    const V u = vnormal_cdf(neg(ha));
    const V v = vnormal_cdf(neg(heff));
    t = V::broadcast(0.5) * (u + v) - u * v - quad;
  } else {
    t = vowens_quad(ha, V::broadcast(prep.aa));
  }
  // h == 0 lanes: the exact closed form (also covers the reduced
  // path, whose quadrature degenerates there).
  t = blend_v(cmp_eq(ha, V::zero()), V::broadcast(prep.h0_value / prep.sign),
              t);
  t = t * V::broadcast(prep.sign);
  return blend_v(nan_mask, h, t);
}

template <class V>
void k_owens_t(const double* h, double a, double* out, std::size_t n) {
  const OwensPrep prep = owens_prepare(a);
  std::size_t i = 0;
  if (!prep.a_nan && !prep.a_zero) {
    for (; i + V::kLanes <= n; i += V::kLanes) {
      const V vh = V::load(h + i);
      vowens_t(vh, prep).store(out + i);
      // |h| >= 8 lanes (T < 1e-15): the quadrature's exp arguments
      // grow past ~-60, where 1-ULP rounding differences in the
      // argument are amplified ~|arg| ULP in the result. Those lanes
      // are rare in real data; recompute them scalar so the deep
      // tails match stats:: exactly.
      const V deep = cmp_ge(abs_v(vh), V::broadcast(8.0));
      if (any(deep)) {
        const int bits = mask_bits(deep);
        for (int lane = 0; lane < V::kLanes; ++lane) {
          if (bits & (1 << lane)) {
            out[i + lane] = stats::owens_t(h[i + lane], a);
          }
        }
      }
    }
  }
  for (; i < n; ++i) out[i] = stats::owens_t(h[i], a);
}

template <class V>
void k_sn_log_pdf(double xi, double omega, double alpha, const double* x,
                  double* out, std::size_t n) {
  // Loop invariants, computed with the same scalar expressions as
  // SkewNormal::log_pdf so the hoisting is bitwise-neutral.
  const double lg2w = std::log(2.0 / omega);
  const double lgs2pi = std::log(stats::kSqrt2Pi);
  const V vxi = V::broadcast(xi);
  const V vinv = V::broadcast(omega);
  const V valpha = V::broadcast(alpha);
  const V c1 = V::broadcast(lg2w);
  const V c2 = V::broadcast(lgs2pi);
  const V half = V::broadcast(0.5);
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    const V z = (V::load(x + i) - vxi) / vinv;
    const V r = (c1 - half * z * z) - c2 + vnormal_log_cdf(valpha * z);
    r.store(out + i);
  }
  for (; i < n; ++i) {
    const double z = (x[i] - xi) / omega;
    out[i] = lg2w - 0.5 * z * z - lgs2pi +
             stats::normal_log_cdf(alpha * z);
  }
}

/// Fused weighted NLL for the Nelder-Mead M-step objective: the
/// optimizer calls this tens of thousands of times per fit, so the
/// log-pdf never round-trips through a buffer. z uses a hoisted
/// reciprocal multiply (one extra rounding vs the division — well
/// inside this tier's documented tolerance). Lanes with w <= 0
/// contribute exactly zero (blend after the multiply, so a non-finite
/// log-pdf on an excluded lane cannot leak in); the lane accumulators
/// are summed in lane order and the remainder in index order, keeping
/// the reduction deterministic for a fixed n.
template <class V>
double k_sn_nll(double xi, double omega, double alpha, const double* x,
                const double* w, std::size_t n) {
  const double lg2w = std::log(2.0 / omega);
  const double lgs2pi = std::log(stats::kSqrt2Pi);
  const V vxi = V::broadcast(xi);
  const V vrw = V::broadcast(1.0 / omega);
  const V valpha = V::broadcast(alpha);
  const V c1 = V::broadcast(lg2w);
  const V c2 = V::broadcast(lgs2pi);
  const V half = V::broadcast(0.5);
  V acc = V::zero();
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    const V wv = V::load(w + i);
    const V z = (V::load(x + i) - vxi) * vrw;
    const V lp = (c1 - half * z * z) - c2 + vnormal_log_cdf(valpha * z);
    acc = acc + blend_v(cmp_lt(V::zero(), wv), wv * lp, V::zero());
  }
  double lanes[V::kLanes];
  acc.store(lanes);
  double total = 0.0;
  for (int lane = 0; lane < V::kLanes; ++lane) total += lanes[lane];
  for (; i < n; ++i) {
    if (w[i] <= 0.0) continue;
    const double z = (x[i] - xi) / omega;
    total += w[i] * (lg2w - 0.5 * z * z - lgs2pi +
                     stats::normal_log_cdf(alpha * z));
  }
  return -total;
}

template <class V>
void k_sn_pdf(double xi, double omega, double alpha, const double* x,
              double* out, std::size_t n) {
  const V vxi = V::broadcast(xi);
  const V vomega = V::broadcast(omega);
  const V valpha = V::broadcast(alpha);
  const V scale = V::broadcast(2.0 / omega);
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    const V z = (V::load(x + i) - vxi) / vomega;
    const V r = scale * vnormal_pdf(z) * vnormal_cdf(valpha * z);
    r.store(out + i);
  }
  for (; i < n; ++i) {
    const double z = (x[i] - xi) / omega;
    out[i] = 2.0 / omega * stats::normal_pdf(z) *
             stats::normal_cdf(alpha * z);
  }
}

template <class V>
void k_sn_cdf(double xi, double omega, double alpha, const double* x,
              double* out, std::size_t n) {
  const OwensPrep prep = owens_prepare(alpha);
  const V vxi = V::broadcast(xi);
  const V vomega = V::broadcast(omega);
  const V one = V::broadcast(1.0);
  std::size_t i = 0;
  if (!prep.a_nan) {
    for (; i + V::kLanes <= n; i += V::kLanes) {
      const V z = (V::load(x + i) - vxi) / vomega;
      V t = prep.a_zero ? V::zero() : vowens_t(z, prep);
      V r = vnormal_cdf(z) - V::broadcast(2.0) * t;
      // SSE/AVX min/max quietly replace NaN with the second operand;
      // keep NaN inputs propagating like the scalar clamp does.
      r = blend_v(cmp_nan(z), z, min_v(max_v(r, V::zero()), one));
      r.store(out + i);
    }
  }
  for (; i < n; ++i) {
    const double z = (x[i] - xi) / omega;
    const double value =
        stats::normal_cdf(z) - 2.0 * stats::owens_t(z, alpha);
    const double lo = value < 0.0 ? 0.0 : value;
    out[i] = lo > 1.0 ? 1.0 : lo;
  }
}

template <class V>
void k_esn_log_pdf(double xi, double omega, double alpha, double tau,
                   const double* x, double* out, std::size_t n) {
  const double tau_arg = tau * std::sqrt(1.0 + alpha * alpha);
  const double lno = std::log(stats::kSqrt2Pi * omega);
  const double lcdf_tau = stats::normal_log_cdf(tau);
  const V vxi = V::broadcast(xi);
  const V vomega = V::broadcast(omega);
  const V valpha = V::broadcast(alpha);
  const V vtau_arg = V::broadcast(tau_arg);
  const V vlno = V::broadcast(lno);
  const V vlcdf_tau = V::broadcast(lcdf_tau);
  const V half = V::broadcast(0.5);
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    const V z = (V::load(x + i) - vxi) / vomega;
    const V arg = vtau_arg + valpha * z;
    const V r =
        neg(half * z * z) - vlno + vnormal_log_cdf(arg) - vlcdf_tau;
    r.store(out + i);
  }
  for (; i < n; ++i) {
    const double z = (x[i] - xi) / omega;
    const double arg = tau_arg + alpha * z;
    out[i] = -0.5 * z * z - lno + stats::normal_log_cdf(arg) - lcdf_tau;
  }
}

template <class V>
void k_esn_pdf(double xi, double omega, double alpha, double tau,
               const double* x, double* out, std::size_t n) {
  k_esn_log_pdf<V>(xi, omega, alpha, tau, x, out, n);
  k_exp<V>(out, out, n);
}

template <class V>
void k_normal_mu_sigma_log_pdf(double mu, double sigma, const double* x,
                               double* out, std::size_t n) {
  const double lns = std::log(sigma * stats::kSqrt2Pi);
  const V vmu = V::broadcast(mu);
  const V vsigma = V::broadcast(sigma);
  const V vlns = V::broadcast(lns);
  const V half = V::broadcast(0.5);
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    const V z = (V::load(x + i) - vmu) / vsigma;
    (neg(half * z * z) - vlns).store(out + i);
  }
  for (; i < n; ++i) {
    const double z = (x[i] - mu) / sigma;
    out[i] = -0.5 * z * z - lns;
  }
}

template <class V>
void k_em_responsibilities(double log_w_a, double log_w_b,
                           const double* lpa, const double* lpb,
                           double* resp, double* lse, std::size_t n) {
  const V la = V::broadcast(log_w_a);
  const V lb = V::broadcast(log_w_b);
  const V bound = V::broadcast(1e300);
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    const V a = la + V::load(lpa + i);
    const V b = lb + V::load(lpb + i);
    const V m = max_v(a, b);
    const V d = min_v(a, b) - m;  // -|a - b| (<= 0)
    const V l = m + vlog1p_unit(vexp(d));
    const V r = vexp(b - l);
    l.store(lse + i);
    r.store(resp + i);
    // Lanes holding non-finite log densities (component collapse,
    // -inf floors) fall back to the scalar combine.
    const V bad =
        or_v(or_v(cmp_nan(d), cmp_lt(bound, abs_v(a))),
             cmp_lt(bound, abs_v(b)));
    if (any(bad)) {
      const int bits = mask_bits(bad);
      for (int lane = 0; lane < V::kLanes; ++lane) {
        if (!(bits & (1 << lane))) continue;
        const double sa = log_w_a + lpa[i + lane];
        const double sb = log_w_b + lpb[i + lane];
        const double sl = stats::log_sum_exp(sa, sb);
        lse[i + lane] = sl;
        resp[i + lane] = std::exp(sb - sl);
      }
    }
  }
  for (; i < n; ++i) {
    const double a = log_w_a + lpa[i];
    const double b = log_w_b + lpb[i];
    const double l = stats::log_sum_exp(a, b);
    lse[i] = l;
    resp[i] = std::exp(b - l);
  }
}

template <class V>
void k_axpy(double a, const double* x, double* y, std::size_t n) {
  const V va = V::broadcast(a);
  std::size_t i = 0;
  for (; i + V::kLanes <= n; i += V::kLanes) {
    // Explicit mul then add — never fused — to stay bitwise with the
    // scalar tier's y[i] += a * x[i].
    const V prod = va * V::load(x + i);
    (V::load(y + i) + prod).store(y + i);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

}  // namespace lvf2::simd::detail
