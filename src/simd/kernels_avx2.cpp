// AVX2+FMA tier: kernels_impl.h instantiated over the 4-lane wrapper.
// This is the only translation unit compiled with -mavx2 -mfma (see
// src/simd/CMakeLists.txt); everything it exports crosses the TU
// boundary through the raw-pointer KernelTable, so no AVX2-encoded
// code can leak into the portable binary. dispatch.cpp only installs
// this table after a runtime CPUID check.

#include "simd/kernel_table.h"

#if defined(__AVX2__) && defined(__FMA__)

#include "simd/kernels_impl.h"
#include "simd/vec.h"

namespace lvf2::simd::detail {

namespace {
constexpr KernelTable kAvx2Table = {
    k_normal_pdf<VecAvx2>,
    k_normal_cdf<VecAvx2>,
    k_normal_log_cdf<VecAvx2>,
    k_normal_quantile<VecAvx2>,
    k_exp<VecAvx2>,
    k_owens_t<VecAvx2>,
    k_sn_log_pdf<VecAvx2>,
    k_sn_pdf<VecAvx2>,
    k_sn_cdf<VecAvx2>,
    k_esn_log_pdf<VecAvx2>,
    k_esn_pdf<VecAvx2>,
    k_normal_mu_sigma_log_pdf<VecAvx2>,
    k_em_responsibilities<VecAvx2>,
    k_axpy<VecAvx2>,
    k_sn_nll<VecAvx2>,
};
}  // namespace

const KernelTable* avx2_kernels() { return &kAvx2Table; }

}  // namespace lvf2::simd::detail

#else  // toolchain could not target AVX2: tier reports unavailable.

namespace lvf2::simd::detail {
const KernelTable* avx2_kernels() { return nullptr; }
}  // namespace lvf2::simd::detail

#endif
