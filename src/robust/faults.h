#pragma once
// Deterministic fault-injection harness. Faults are armed from the
// environment at startup:
//
//   LVF2_FAULTS=<spec>              e.g. "samples.nan,em.collapse:0.5;seed=7"
//
// spec grammar (';'-separated segments):
//   segment  := "seed=" integer | fault-list
//   fault    := name [":" probability]        (probability defaults to 1)
//   name     := exact fault name | group wildcard ("samples.*") | "all"
//
// With LVF2_FAULTS unset the whole subsystem costs one relaxed atomic
// load per hook (same contract as src/obs/, verified by
// BM_DisabledFaultHook). When armed, every injection decision is a
// pure function of (seed, fault, per-fault call index), so runs are
// reproducible bit-for-bit; every actual injection bumps the
// "robust.fault.injected.<name>" metrics counter.
//
// The harness corrupts these layers:
//   samples.*  Monte-Carlo sample sets before fitting
//   em.*       EM internals (collapse / iteration exhaustion /
//              oscillating log-likelihood)
//   liberty.*  Liberty source text before lexing
//   ssta.*     propagation inputs (non-finite delays, empty PDFs)
//   socket.*   lvf2d frame I/O (transient EINTR, short writes,
//              hard connection errors)
//   cache.*    result-cache shard reads (EINTR / EIO)

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace lvf2::robust {

/// Every injectable fault mode. Keep to_string / fault_from_name in
/// faults.cpp in sync when extending.
enum class Fault : int {
  kSamplesNan = 0,    ///< scatter NaN into a sample set
  kSamplesInf,        ///< scatter +/-Inf into a sample set
  kSamplesConstant,   ///< collapse a sample set to a constant
  kSamplesOutlier,    ///< multiply a few samples into huge spikes
  kSamplesTruncate,   ///< shrink a sample set to a tiny N
  kSamplesEmpty,      ///< clear a sample set entirely
  kEmCollapse,        ///< force component collapse inside EM
  kEmExhaust,         ///< suppress convergence until iterations run out
  kEmOscillate,       ///< perturb the log-likelihood into oscillation
  kLibertyToken,      ///< mutate a byte of Liberty source into punctuation
  kLibertyTruncate,   ///< chop the tail off Liberty source
  kLibertyBadNumber,  ///< corrupt a digit inside Liberty source
  kSstaNonfinite,     ///< poison a delay constant with NaN
  kSstaEmptyPdf,      ///< replace a stage PDF with an empty grid
  kSocketRead,        ///< fail a socket read (transient EINTR or hard)
  kSocketWrite,       ///< fail a socket write (transient or short)
  kCacheReadIo,       ///< fail a cache shard read (EINTR / EIO)
  kCount,
};

inline constexpr int kFaultCount = static_cast<int>(Fault::kCount);

/// Stable spec name ("samples.nan", "em.collapse", ...).
const char* to_string(Fault fault);

/// Inverse of to_string; nullopt for unknown names.
std::optional<Fault> fault_from_name(std::string_view name);

namespace detail {
extern std::atomic<bool> g_faults_enabled;
}  // namespace detail

/// True when any fault is armed. Relaxed load: the only cost paid by
/// instrumented code when injection is off.
inline bool faults_enabled() {
  return detail::g_faults_enabled.load(std::memory_order_relaxed);
}

/// Process-wide injector (leaked singleton, like obs::Tracer).
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Parses and applies a spec (see header comment). Replaces the
  /// current plan wholesale; an empty spec equals clear().
  core::Status configure(std::string_view spec);

  /// Disarms everything and resets per-fault call counters.
  void clear();

  bool armed(Fault fault) const;
  std::uint64_t seed() const { return seed_; }

  /// Deterministic injection decision: advances the per-fault call
  /// counter and fires per the armed probability. Counts the
  /// injection when it fires.
  bool should_fire(Fault fault);

  /// Deterministic 64-bit variate for shaping a fired fault (which
  /// index to poison, where to truncate, ...). Advances the same
  /// per-fault sequence.
  std::uint64_t draw(Fault fault);

  /// Number of times `fault` actually fired since configure/clear.
  std::uint64_t injected_count(Fault fault) const;

 private:
  FaultInjector() = default;

  struct Slot {
    std::atomic<bool> armed{false};
    double probability = 1.0;
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> fired{0};
  };

  std::mutex mutex_;  ///< guards configure/clear
  Slot slots_[kFaultCount];
  std::uint64_t seed_ = 0;
};

/// Hot-path hook: false with one relaxed load when injection is off.
inline bool fire(Fault fault) {
  if (!faults_enabled()) return false;
  return FaultInjector::instance().should_fire(fault);
}

/// Applies every armed samples.* fault to `xs` in place. Returns true
/// when anything was corrupted. No-op (one relaxed load) when
/// injection is off.
bool corrupt_samples(std::vector<double>& xs);

/// Applies every armed liberty.* fault to Liberty source text in
/// place. Returns true when anything was corrupted.
bool corrupt_liberty_text(std::string& text);

/// True when any fault that corrupts the *computation* (samples.*,
/// em.*, liberty.*, ssta.*) is armed. The result cache keys entries
/// by their inputs, and injected computation faults make an entry
/// impure (corruption advances per-fault call counters), so the
/// cache stands down while any is armed. The I/O faults (socket.*,
/// cache.read_io) exercise transport and storage, leave results
/// pure, and must NOT disable the cache — the serve soak runs a
/// warm readonly cache under exactly those faults.
bool pipeline_faults_armed();

}  // namespace lvf2::robust
