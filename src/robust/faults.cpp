#include "robust/faults.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "obs/log.h"
#include "obs/metrics.h"

namespace lvf2::robust {

namespace detail {
std::atomic<bool> g_faults_enabled{false};
}  // namespace detail

namespace {

struct FaultName {
  Fault fault;
  const char* name;
};

constexpr FaultName kFaultNames[] = {
    {Fault::kSamplesNan, "samples.nan"},
    {Fault::kSamplesInf, "samples.inf"},
    {Fault::kSamplesConstant, "samples.constant"},
    {Fault::kSamplesOutlier, "samples.outlier"},
    {Fault::kSamplesTruncate, "samples.truncate"},
    {Fault::kSamplesEmpty, "samples.empty"},
    {Fault::kEmCollapse, "em.collapse"},
    {Fault::kEmExhaust, "em.exhaust"},
    {Fault::kEmOscillate, "em.oscillate"},
    {Fault::kLibertyToken, "liberty.token"},
    {Fault::kLibertyTruncate, "liberty.truncate"},
    {Fault::kLibertyBadNumber, "liberty.badnum"},
    {Fault::kSstaNonfinite, "ssta.nonfinite"},
    {Fault::kSstaEmptyPdf, "ssta.empty_pdf"},
    {Fault::kSocketRead, "socket.read"},
    {Fault::kSocketWrite, "socket.write"},
    {Fault::kCacheReadIo, "cache.read_io"},
};
static_assert(sizeof(kFaultNames) / sizeof(kFaultNames[0]) ==
              static_cast<std::size_t>(kFaultCount));

// splitmix64: the decision function must be a bijective, well-mixed
// hash of (seed, fault, call index) so injections are reproducible
// and uncorrelated across sites.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t mix(std::uint64_t seed, Fault fault, std::uint64_t call) {
  return splitmix64(seed ^ splitmix64(static_cast<std::uint64_t>(fault) +
                                      0x51ed2700ULL) ^
                    splitmix64(call));
}

void strip_spaces(std::string_view& s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
}

// Reads LVF2_FAULTS at static-initialization time, mirroring the obs
// sinks, so an armed process needs no opt-in from the program itself.
struct FaultEnvInit {
  FaultEnvInit() {
    if (const char* spec = std::getenv("LVF2_FAULTS")) {
      if (spec[0] != '\0') {
        const core::Status status = FaultInjector::instance().configure(spec);
        if (!status.is_ok()) {
          std::fprintf(stderr, "lvf2-robust: bad LVF2_FAULTS: %s\n",
                       status.to_string().c_str());
        }
      }
    }
  }
} g_fault_env_init;

}  // namespace

const char* to_string(Fault fault) {
  const int i = static_cast<int>(fault);
  if (i < 0 || i >= kFaultCount) return "unknown";
  return kFaultNames[i].name;
}

std::optional<Fault> fault_from_name(std::string_view name) {
  for (const FaultName& entry : kFaultNames) {
    if (name == entry.name) return entry.fault;
  }
  return std::nullopt;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector* injector = new FaultInjector();  // leaked: see header
  return *injector;
}

core::Status FaultInjector::configure(std::string_view spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Slot& slot : slots_) {
    slot.armed.store(false, std::memory_order_relaxed);
    slot.probability = 1.0;
    slot.calls.store(0, std::memory_order_relaxed);
    slot.fired.store(0, std::memory_order_relaxed);
  }
  seed_ = 0;
  bool any_armed = false;

  const auto arm = [&](Fault fault, double probability) {
    Slot& slot = slots_[static_cast<int>(fault)];
    slot.probability = probability;
    slot.armed.store(true, std::memory_order_relaxed);
    any_armed = true;
  };

  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view segment = rest.substr(0, semi);
    rest = (semi == std::string_view::npos) ? std::string_view()
                                            : rest.substr(semi + 1);
    strip_spaces(segment);
    if (segment.empty()) continue;
    if (segment.rfind("seed=", 0) == 0) {
      const std::string digits(segment.substr(5));
      char* end = nullptr;
      const unsigned long long value = std::strtoull(digits.c_str(), &end, 10);
      if (end == digits.c_str() || *end != '\0') {
        detail::g_faults_enabled.store(false, std::memory_order_relaxed);
        return core::Status::parse_error("bad seed: '" + digits + "'");
      }
      seed_ = value;
      continue;
    }
    // A comma-separated fault list.
    while (!segment.empty()) {
      const std::size_t comma = segment.find(',');
      std::string_view item = segment.substr(0, comma);
      segment = (comma == std::string_view::npos) ? std::string_view()
                                                  : segment.substr(comma + 1);
      strip_spaces(item);
      if (item.empty()) continue;
      double probability = 1.0;
      const std::size_t colon = item.find(':');
      if (colon != std::string_view::npos) {
        const std::string number(item.substr(colon + 1));
        char* end = nullptr;
        probability = std::strtod(number.c_str(), &end);
        if (end == number.c_str() || *end != '\0' ||
            !(probability >= 0.0 && probability <= 1.0)) {
          detail::g_faults_enabled.store(false, std::memory_order_relaxed);
          return core::Status::parse_error("bad probability in '" +
                                           std::string(item) + "'");
        }
        item = item.substr(0, colon);
        strip_spaces(item);
      }
      if (item == "all") {
        for (const FaultName& entry : kFaultNames) {
          arm(entry.fault, probability);
        }
        continue;
      }
      if (item.size() > 2 && item.substr(item.size() - 2) == ".*") {
        const std::string_view prefix = item.substr(0, item.size() - 1);
        bool matched = false;
        for (const FaultName& entry : kFaultNames) {
          if (std::string_view(entry.name).rfind(prefix, 0) == 0) {
            arm(entry.fault, probability);
            matched = true;
          }
        }
        if (matched) continue;
      }
      const std::optional<Fault> fault = fault_from_name(item);
      if (!fault) {
        detail::g_faults_enabled.store(false, std::memory_order_relaxed);
        return core::Status::parse_error("unknown fault '" +
                                         std::string(item) + "'");
      }
      arm(*fault, probability);
    }
  }
  detail::g_faults_enabled.store(any_armed, std::memory_order_relaxed);
  if (any_armed) {
    obs::log_info("robust.faults_armed", {{"spec", spec}, {"seed", seed_}});
  }
  return core::Status::ok();
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  detail::g_faults_enabled.store(false, std::memory_order_relaxed);
  for (Slot& slot : slots_) {
    slot.armed.store(false, std::memory_order_relaxed);
    slot.probability = 1.0;
    slot.calls.store(0, std::memory_order_relaxed);
    slot.fired.store(0, std::memory_order_relaxed);
  }
  seed_ = 0;
}

bool FaultInjector::armed(Fault fault) const {
  return slots_[static_cast<int>(fault)].armed.load(
      std::memory_order_relaxed);
}

bool FaultInjector::should_fire(Fault fault) {
  Slot& slot = slots_[static_cast<int>(fault)];
  if (!slot.armed.load(std::memory_order_relaxed)) return false;
  const std::uint64_t call =
      slot.calls.fetch_add(1, std::memory_order_relaxed);
  if (slot.probability < 1.0) {
    const double u =
        static_cast<double>(mix(seed_, fault, call) >> 11) * 0x1.0p-53;
    if (u >= slot.probability) return false;
  }
  slot.fired.fetch_add(1, std::memory_order_relaxed);
  obs::counter(std::string("robust.fault.injected.") + to_string(fault))
      .add(1);
  return true;
}

std::uint64_t FaultInjector::draw(Fault fault) {
  Slot& slot = slots_[static_cast<int>(fault)];
  const std::uint64_t call =
      slot.calls.fetch_add(1, std::memory_order_relaxed);
  return mix(seed_, fault, call);
}

std::uint64_t FaultInjector::injected_count(Fault fault) const {
  return slots_[static_cast<int>(fault)].fired.load(
      std::memory_order_relaxed);
}

bool corrupt_samples(std::vector<double>& xs) {
  if (!faults_enabled() || xs.empty()) return false;
  FaultInjector& injector = FaultInjector::instance();
  bool corrupted = false;

  if (injector.should_fire(Fault::kSamplesNan)) {
    // Scatter NaN over ~1/7 of the set, offset deterministically.
    const std::size_t start = injector.draw(Fault::kSamplesNan) % 7;
    for (std::size_t i = start; i < xs.size(); i += 7) {
      xs[i] = std::numeric_limits<double>::quiet_NaN();
    }
    corrupted = true;
  }
  if (!xs.empty() && injector.should_fire(Fault::kSamplesInf)) {
    const std::size_t start = injector.draw(Fault::kSamplesInf) % 11;
    bool negative = false;
    for (std::size_t i = start; i < xs.size(); i += 11) {
      xs[i] = negative ? -std::numeric_limits<double>::infinity()
                       : std::numeric_limits<double>::infinity();
      negative = !negative;
    }
    corrupted = true;
  }
  if (!xs.empty() && injector.should_fire(Fault::kSamplesConstant)) {
    const double value = xs[injector.draw(Fault::kSamplesConstant) %
                            xs.size()];
    const double fill = std::isfinite(value) ? value : 1.0;
    for (double& x : xs) x = fill;
    corrupted = true;
  }
  if (!xs.empty() && injector.should_fire(Fault::kSamplesOutlier)) {
    // Three spikes, six orders of magnitude out.
    for (int k = 0; k < 3; ++k) {
      const std::size_t i = injector.draw(Fault::kSamplesOutlier) % xs.size();
      xs[i] = (std::isfinite(xs[i]) ? xs[i] : 1.0) * 1e6 + 1e6;
    }
    corrupted = true;
  }
  if (!xs.empty() && injector.should_fire(Fault::kSamplesTruncate)) {
    xs.resize(std::min<std::size_t>(xs.size(), 3));
    corrupted = true;
  }
  if (injector.should_fire(Fault::kSamplesEmpty)) {
    xs.clear();
    corrupted = true;
  }
  return corrupted;
}

bool pipeline_faults_armed() {
  if (!faults_enabled()) return false;
  const FaultInjector& injector = FaultInjector::instance();
  for (int i = 0; i < kFaultCount; ++i) {
    const Fault fault = static_cast<Fault>(i);
    if (fault == Fault::kSocketRead || fault == Fault::kSocketWrite ||
        fault == Fault::kCacheReadIo) {
      continue;  // I/O faults do not make computed results impure
    }
    if (injector.armed(fault)) return true;
  }
  return false;
}

bool corrupt_liberty_text(std::string& text) {
  if (!faults_enabled() || text.empty()) return false;
  FaultInjector& injector = FaultInjector::instance();
  bool corrupted = false;

  if (injector.should_fire(Fault::kLibertyToken)) {
    static constexpr char kNasty[] = {'{', '}', '(', ')', '"', ';', '\\'};
    const std::uint64_t r = injector.draw(Fault::kLibertyToken);
    text[r % text.size()] = kNasty[(r >> 32) % sizeof(kNasty)];
    corrupted = true;
  }
  if (!text.empty() && injector.should_fire(Fault::kLibertyBadNumber)) {
    // Corrupt the first digit at/after a deterministic offset that
    // continues a number (previous char is a digit or '.'): that
    // targets numeric payloads, not digits inside identifier names.
    const std::size_t start =
        injector.draw(Fault::kLibertyBadNumber) % text.size();
    for (std::size_t k = 0; k < text.size(); ++k) {
      const std::size_t i = (start + k) % text.size();
      if (i == 0 || !std::isdigit(static_cast<unsigned char>(text[i]))) {
        continue;
      }
      const char prev = text[i - 1];
      if (std::isdigit(static_cast<unsigned char>(prev)) || prev == '.') {
        text[i] = 'x';
        corrupted = true;
        break;
      }
    }
  }
  if (!text.empty() && injector.should_fire(Fault::kLibertyTruncate)) {
    // Keep between 30% and 90% of the source.
    const std::uint64_t r = injector.draw(Fault::kLibertyTruncate);
    const double keep = 0.3 + 0.6 * (static_cast<double>(r % 1000) / 1000.0);
    text.resize(static_cast<std::size_t>(
        static_cast<double>(text.size()) * keep));
    corrupted = true;
  }
  return corrupted;
}

}  // namespace lvf2::robust
