#include "cache_tool.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cache/cache.h"
#include "cells/characterize_cache.h"
#include "obs/json.h"
#include "stats/rng.h"

namespace lvf2::tools {

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lvf2_cache <command> <dir> [options]\n"
               "  stats  <dir>                    entry counts and salt "
               "breakdown\n"
               "  gc     <dir>                    drop stale-salt and "
               "undecodable entries\n"
               "  purge  <dir>                    delete every shard file\n"
               "  verify <dir> [--sample N] [--seed S]\n"
               "                                  re-run N sampled entries "
               "(default 4)\n"
               "                                  and diff against the "
               "stored results\n");
  return 2;
}

// Snapshot of a cache directory: every entry parsed, keyed, and
// classified by its recorded salt.
struct Snapshot {
  // (key, parsed doc) of every entry that parses as a JSON object.
  std::vector<std::pair<std::uint64_t, obs::JsonValue>> entries;
  std::vector<std::uint64_t> undecodable;  ///< no decodable inputs
  std::map<std::uint64_t, std::size_t> salt_histogram;
  std::uint64_t load_failures = 0;
};

Snapshot snapshot_cache(cache::ResultCache& store) {
  Snapshot snap;
  snap.load_failures = store.load_failures();
  store.for_each_entry([&](std::uint64_t key, const std::string& text) {
    std::optional<obs::JsonValue> doc = obs::json_parse(text);
    if (!doc.has_value() ||
        !cells::decode_cached_inputs(*doc).has_value()) {
      snap.undecodable.push_back(key);
      return;
    }
    std::optional<cells::CachedEntryInputs> inputs =
        cells::decode_cached_inputs(*doc);
    ++snap.salt_histogram[inputs->salt];
    snap.entries.emplace_back(key, std::move(*doc));
  });
  return snap;
}

int run_stats(const std::string& dir) {
  cache::ResultCache store;
  store.arm(dir, cache::Mode::kReadOnly);
  const Snapshot snap = snapshot_cache(store);
  std::size_t stale = 0;
  for (const auto& [salt, count] : snap.salt_histogram) {
    if (salt != cells::kCharacterizeCacheSalt) stale += count;
  }
  std::printf("cache %s\n", dir.c_str());
  std::printf("  entries:        %zu\n", store.size());
  std::printf("  decodable:      %zu\n", snap.entries.size());
  std::printf("  undecodable:    %zu\n", snap.undecodable.size());
  std::printf("  stale_salt:     %zu\n", stale);
  std::printf("  load_failures:  %llu\n",
              static_cast<unsigned long long>(snap.load_failures));
  std::printf("  current_salt:   %llu\n",
              static_cast<unsigned long long>(cells::kCharacterizeCacheSalt));
  for (const auto& [salt, count] : snap.salt_histogram) {
    std::printf("  salt %llu:         %zu\n",
                static_cast<unsigned long long>(salt), count);
  }
  return 0;
}

int run_gc(const std::string& dir) {
  cache::ResultCache store;
  store.arm(dir, cache::Mode::kReadWrite);
  const Snapshot snap = snapshot_cache(store);
  std::size_t removed = 0;
  for (const std::uint64_t key : snap.undecodable) {
    removed += store.erase(key) ? 1 : 0;
  }
  for (const auto& [key, doc] : snap.entries) {
    const std::optional<cells::CachedEntryInputs> inputs =
        cells::decode_cached_inputs(doc);
    if (inputs->salt != cells::kCharacterizeCacheSalt) {
      removed += store.erase(key) ? 1 : 0;
    }
  }
  store.flush();
  std::printf("gc %s: removed %zu of %zu entries\n", dir.c_str(), removed,
              snap.entries.size() + snap.undecodable.size());
  return 0;
}

int run_purge(const std::string& dir) {
  std::size_t removed = 0;
  for (std::size_t shard = 0; shard < cache::ResultCache::kShardCount;
       ++shard) {
    const std::string path =
        dir + "/" + cache::ResultCache::shard_file_name(shard);
    if (std::remove(path.c_str()) == 0) ++removed;
    std::remove((path + ".lock").c_str());
  }
  std::printf("purge %s: removed %zu shard files\n", dir.c_str(), removed);
  return 0;
}

int run_verify(const std::string& dir, std::size_t sample,
               std::uint64_t seed) {
  // The process singleton may have been armed from LVF2_CACHE by the
  // static initializer; the recompute must not be served from the very
  // entries under verification.
  cache::ResultCache::instance().disarm();

  cache::ResultCache store;
  store.arm(dir, cache::Mode::kReadOnly);
  Snapshot snap = snapshot_cache(store);
  if (!snap.undecodable.empty()) {
    std::printf("verify %s: %zu undecodable entries (run gc)\n", dir.c_str(),
                snap.undecodable.size());
  }
  if (snap.entries.empty()) {
    std::printf("verify %s: no decodable entries\n", dir.c_str());
    return 0;
  }

  // Seeded sample without replacement (partial Fisher-Yates), so
  // repeated runs walk different subsets only when asked to.
  stats::Rng rng(seed);
  const std::size_t n = std::min(sample, snap.entries.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(
                rng.uniform_index(snap.entries.size() - i));
    std::swap(snap.entries[i], snap.entries[j]);
  }

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& [key, doc] = snap.entries[i];
    const cells::CacheVerifyOutcome outcome =
        cells::verify_cached_entry(doc);
    std::printf("  %s: %s\n",
                cache::ResultCache::format_key(key).c_str(),
                cells::to_string(outcome));
    if (outcome != cells::CacheVerifyOutcome::kOk) ++mismatches;
  }
  std::printf("verify %s: %zu/%zu sampled entries ok\n", dir.c_str(),
              n - mismatches, n);
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int cache_tool_main(int argc, const char* const* argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string dir = argv[2];

  if (command == "stats") return run_stats(dir);
  if (command == "gc") return run_gc(dir);
  if (command == "purge") return run_purge(dir);
  if (command == "verify") {
    std::size_t sample = 4;
    std::uint64_t seed = 0x5eedcafe;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--sample" && i + 1 < argc) {
        sample = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      } else if (arg == "--seed" && i + 1 < argc) {
        seed = std::strtoull(argv[++i], nullptr, 10);
      } else {
        return usage();
      }
    }
    return run_verify(dir, sample, seed);
  }
  return usage();
}

}  // namespace lvf2::tools
