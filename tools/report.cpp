#include "report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>

#include "obs/manifest.h"
#include "obs/tdigest.h"

namespace lvf2::tools {

namespace {

bool read_file(const std::string& path, std::string& out,
               std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok && error) *error = "read error on " + path;
  return ok;
}

/// Identity of one arc row: every field that names the measurement,
/// none that carries its result.
std::string arc_key(const obs::JsonValue& arc) {
  std::string key = arc.string_or("table", "?");
  key += '/';
  key += arc.string_or("cell", "?");
  key += '/';
  key += arc.string_or("arc", "");
  key += '/';
  key += arc.string_or("metric", "");
  key += "[" + std::to_string(static_cast<long>(arc.number_or("load_idx", -1)));
  key += "," + std::to_string(static_cast<long>(arc.number_or("slew_idx", -1)));
  key += ']';
  return key;
}

const obs::JsonValue* find_by_key(const obs::JsonValue& rows,
                                  const std::string& key,
                                  std::string (*key_of)(const obs::JsonValue&)) {
  if (!rows.is_array()) return nullptr;
  for (const obs::JsonValue& row : rows.array) {
    if (key_of(row) == key) return &row;
  }
  return nullptr;
}

std::string endpoint_key(const obs::JsonValue& endpoint) {
  return endpoint.string_or("path", "?");
}

bool within(double ref, double cur, const DiffOptions& o) {
  if (std::isnan(ref) && std::isnan(cur)) return true;
  return std::fabs(cur - ref) <=
         o.atol + o.rtol * std::max(std::fabs(ref), std::fabs(cur));
}

void diff_number(const obs::JsonValue& ref, const obs::JsonValue& cur,
                 std::string_view field, const std::string& where,
                 const DiffOptions& o, DiffResult& out) {
  const obs::JsonValue* r = ref.find(field);
  const obs::JsonValue* c = cur.find(field);
  if (r == nullptr && c == nullptr) return;
  if (r == nullptr || c == nullptr) {
    out.regressions.push_back(where + ": field " + std::string(field) +
                              (r == nullptr ? " appeared" : " disappeared"));
    return;
  }
  // Non-finite values render as JSON null. A null on both sides is
  // agreement (within() treats NaN==NaN the same way); a null on one
  // side is explicit drift, not a silent 0 == 0 comparison of the
  // unset `number` fields.
  const bool r_null = r->type == obs::JsonValue::Type::kNull;
  const bool c_null = c->type == obs::JsonValue::Type::kNull;
  if (r_null && c_null) return;
  if (r_null != c_null) {
    out.regressions.push_back(where + ": " + std::string(field) +
                              (r_null ? " null -> number" : " number -> null"));
    return;
  }
  if (!within(r->number, c->number, o)) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s: %s %.9g -> %.9g (beyond %g%%+%g)",
                  where.c_str(), std::string(field).c_str(), r->number,
                  c->number, o.rtol * 100.0, o.atol);
    out.regressions.emplace_back(buf);
  }
}

void diff_string(const obs::JsonValue& ref, const obs::JsonValue& cur,
                 std::string_view field, const std::string& where,
                 DiffResult& out) {
  const std::string r = ref.string_or(field, "");
  const std::string c = cur.string_or(field, "");
  if (r != c) {
    out.regressions.push_back(where + ": " + std::string(field) + " \"" + r +
                              "\" -> \"" + c + "\"");
  }
}

/// Diffs the six numeric QoR fields of one model entry.
void diff_model(const obs::JsonValue& ref, const obs::JsonValue& cur,
                const std::string& where, const DiffOptions& o,
                DiffResult& out) {
  for (const char* field : {"binning", "yield_3sigma", "cdf_rmse", "x_binning",
                            "x_yield_3sigma", "x_cdf_rmse"}) {
    diff_number(ref, cur, field, where, o, out);
  }
}

/// Shared by arcs and endpoints: golden moments + per-model metrics.
void diff_golden_and_models(const obs::JsonValue& ref,
                            const obs::JsonValue& cur,
                            const std::string& where, const DiffOptions& o,
                            DiffResult& out) {
  const obs::JsonValue* rg = ref.find("golden");
  const obs::JsonValue* cg = cur.find("golden");
  if (rg != nullptr && cg != nullptr) {
    for (const char* field :
         {"mean", "stddev", "skewness", "yield_3sigma"}) {
      diff_number(*rg, *cg, field, where + " golden", o, out);
    }
  }
  const obs::JsonValue* rm = ref.find("models");
  const obs::JsonValue* cm = cur.find("models");
  if (rm == nullptr || !rm->is_object()) return;
  for (const auto& [model, ref_model] : rm->object) {
    const obs::JsonValue* cur_model =
        (cm != nullptr) ? cm->find(model) : nullptr;
    if (cur_model == nullptr) {
      out.regressions.push_back(where + ": model " + model + " disappeared");
      continue;
    }
    diff_model(ref_model, *cur_model, where + " " + model, o, out);
  }
}

void diff_arc(const obs::JsonValue& ref, const obs::JsonValue& cur,
              const std::string& where, const DiffOptions& o,
              DiffResult& out) {
  diff_string(ref, cur, "status", where, out);
  const obs::JsonValue* re = ref.find("em");
  const obs::JsonValue* ce = cur.find("em");
  if (re != nullptr && ce != nullptr) {
    diff_string(*re, *ce, "degradation", where + " em", out);
    const obs::JsonValue* rc = re->find("converged");
    const obs::JsonValue* cc = ce->find("converged");
    if (rc != nullptr && cc != nullptr && rc->boolean != cc->boolean) {
      out.regressions.push_back(where + ": em.converged " +
                                (rc->boolean ? "true" : "false") + " -> " +
                                (cc->boolean ? "true" : "false"));
    }
    const double ri = re->number_or("iterations", 0.0);
    const double ci = ce->number_or("iterations", 0.0);
    if (ri != ci) {
      out.notes.push_back(where + ": em.iterations " +
                          std::to_string(static_cast<long>(ri)) + " -> " +
                          std::to_string(static_cast<long>(ci)));
    }
  }
  diff_golden_and_models(ref, cur, where, o, out);
}

void diff_rows(const obs::JsonValue& golden, const obs::JsonValue& current,
               const char* section,
               std::string (*key_of)(const obs::JsonValue&),
               void (*diff_row)(const obs::JsonValue&, const obs::JsonValue&,
                                const std::string&, const DiffOptions&,
                                DiffResult&),
               const DiffOptions& o, DiffResult& out) {
  const obs::JsonValue* ref_rows = golden.find(section);
  const obs::JsonValue* cur_rows = current.find(section);
  static const obs::JsonValue kEmpty{};
  if (ref_rows == nullptr) ref_rows = &kEmpty;
  if (cur_rows == nullptr) cur_rows = &kEmpty;
  if (ref_rows->is_array()) {
    for (const obs::JsonValue& ref_row : ref_rows->array) {
      const std::string key = key_of(ref_row);
      const std::string where = std::string(section) + " " + key;
      const obs::JsonValue* cur_row = find_by_key(*cur_rows, key, key_of);
      if (cur_row == nullptr) {
        out.regressions.push_back(where + ": missing");
        continue;
      }
      diff_row(ref_row, *cur_row, where, o, out);
    }
  }
  if (cur_rows->is_array()) {
    for (const obs::JsonValue& cur_row : cur_rows->array) {
      const std::string key = key_of(cur_row);
      if (find_by_key(*ref_rows, key, key_of) == nullptr) {
        out.notes.push_back(std::string(section) + " " + key +
                            ": new (not in reference)");
      }
    }
  }
}

/// Generic recursive diff for opt-in sections (exec / resource /
/// profile / stages / metrics): numbers use the tolerance test,
/// strings and booleans compare exactly, objects recurse with
/// missing-key regressions, arrays compare elementwise.
void diff_json(const obs::JsonValue& ref, const obs::JsonValue& cur,
               const std::string& where, const DiffOptions& o,
               DiffResult& out) {
  using Type = obs::JsonValue::Type;
  if (ref.type != cur.type) {
    out.regressions.push_back(where + ": type changed");
    return;
  }
  switch (ref.type) {
    case Type::kNumber:
      if (!within(ref.number, cur.number, o)) {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%s: %.9g -> %.9g (beyond %g%%+%g)",
                      where.c_str(), ref.number, cur.number, o.rtol * 100.0,
                      o.atol);
        out.regressions.emplace_back(buf);
      }
      return;
    case Type::kString:
      if (ref.string != cur.string) {
        out.regressions.push_back(where + ": \"" + ref.string + "\" -> \"" +
                                  cur.string + "\"");
      }
      return;
    case Type::kBool:
      if (ref.boolean != cur.boolean) {
        out.regressions.push_back(
            where + ": " + (ref.boolean ? "true" : "false") + " -> " +
            (cur.boolean ? "true" : "false"));
      }
      return;
    case Type::kObject:
      for (const auto& [key, ref_value] : ref.object) {
        const obs::JsonValue* cur_value = cur.find(key);
        if (cur_value == nullptr) {
          out.regressions.push_back(where + "." + key + ": disappeared");
          continue;
        }
        diff_json(ref_value, *cur_value, where + "." + key, o, out);
      }
      for (const auto& [key, cur_value] : cur.object) {
        (void)cur_value;
        if (ref.find(key) == nullptr) {
          out.notes.push_back(where + "." + key + ": new (not in reference)");
        }
      }
      return;
    case Type::kArray: {
      if (ref.array.size() != cur.array.size()) {
        out.regressions.push_back(
            where + ": array size " + std::to_string(ref.array.size()) +
            " -> " + std::to_string(cur.array.size()));
        return;
      }
      for (std::size_t i = 0; i < ref.array.size(); ++i) {
        diff_json(ref.array[i], cur.array[i],
                  where + "[" + std::to_string(i) + "]", o, out);
      }
      return;
    }
    case Type::kNull:
      return;
  }
}

void append_row(std::string& out, const obs::JsonValue& row,
                const std::string& label) {
  char buf[256];
  const obs::JsonValue* g = row.find("golden");
  std::snprintf(buf, sizeof(buf), "%-40s mean=%-12.6g sigma=%-12.6g\n",
                label.c_str(), g ? g->number_or("mean", 0.0) : 0.0,
                g ? g->number_or("stddev", 0.0) : 0.0);
  out += buf;
  const obs::JsonValue* models = row.find("models");
  if (models == nullptr || !models->is_object()) return;
  for (const auto& [model, m] : models->object) {
    std::snprintf(buf, sizeof(buf),
                  "  %-6s bin=%-10.4g yield=%-10.4g rmse=%-10.4g"
                  " x_bin=%-8.3g x_yield=%-8.3g x_rmse=%-8.3g\n",
                  model.c_str(), m.number_or("binning", 0.0),
                  m.number_or("yield_3sigma", 0.0),
                  m.number_or("cdf_rmse", 0.0), m.number_or("x_binning", 1.0),
                  m.number_or("x_yield_3sigma", 1.0),
                  m.number_or("x_cdf_rmse", 1.0));
    out += buf;
  }
}

}  // namespace

std::optional<obs::JsonValue> load_manifest(const std::string& path,
                                            std::string* error) {
  std::string text;
  if (!read_file(path, text, error)) return std::nullopt;
  std::string parse_error;
  std::optional<obs::JsonValue> doc = obs::json_parse(text, &parse_error);
  if (!doc) {
    if (error) *error = path + ": " + parse_error;
    return std::nullopt;
  }
  if (!doc->is_object() || !doc->has("schema_version")) {
    if (error) *error = path + ": not a manifest (no schema_version)";
    return std::nullopt;
  }
  const double version = doc->number_or("schema_version", 0.0);
  if (version != obs::kManifestSchemaVersion) {
    if (error) {
      *error = path + ": unsupported schema_version " +
               std::to_string(static_cast<int>(version));
    }
    return std::nullopt;
  }
  return doc;
}

std::string render_manifest(const obs::JsonValue& manifest) {
  std::string out;
  char buf[256];
  out += "manifest: tool=" + manifest.string_or("tool", "?") +
         " schema_version=" +
         std::to_string(
             static_cast<int>(manifest.number_or("schema_version", 0.0))) +
         "\n";

  if (const obs::JsonValue* config = manifest.find("config");
      config != nullptr && !config->object.empty()) {
    out += "\nconfig:\n";
    for (const auto& [key, value] : config->object) {
      out += "  " + key + " = " + obs::json_write(value) + "\n";
    }
  }

  if (const obs::JsonValue* stages = manifest.find("stages");
      stages != nullptr && !stages->object.empty()) {
    out += "\nstages:\n";
    std::snprintf(buf, sizeof(buf), "  %-24s %10s %12s %12s\n", "stage",
                  "count", "wall_ms", "cpu_ms");
    out += buf;
    for (const auto& [name, s] : stages->object) {
      std::snprintf(buf, sizeof(buf), "  %-24s %10.0f %12.3f %12.3f\n",
                    name.c_str(), s.number_or("count", 0.0),
                    s.number_or("wall_ms", 0.0), s.number_or("cpu_ms", 0.0));
      out += buf;
    }
  }

  if (const obs::JsonValue* arcs = manifest.find("arcs");
      arcs != nullptr && !arcs->array.empty()) {
    out += "\narcs (" + std::to_string(arcs->array.size()) + "):\n";
    for (const obs::JsonValue& arc : arcs->array) {
      std::string label = arc_key(arc);
      const std::string status = arc.string_or("status", "ok");
      if (status != "ok") label += " [" + status + "]";
      append_row(out, arc, label);
    }
  }

  if (const obs::JsonValue* endpoints = manifest.find("endpoints");
      endpoints != nullptr && !endpoints->array.empty()) {
    out += "\nendpoints (" + std::to_string(endpoints->array.size()) + "):\n";
    for (const obs::JsonValue& e : endpoints->array) {
      const std::string label =
          endpoint_key(e) + " depth=" +
          std::to_string(static_cast<long>(e.number_or("depth", 0.0)));
      append_row(out, e, label);
    }
  }
  return out;
}

obs::JsonValue canonicalize(const obs::JsonValue& manifest) {
  obs::JsonValue out;
  out.type = obs::JsonValue::Type::kObject;
  for (const char* key :
       {"schema_version", "tool", "config", "arcs", "endpoints", "yield_hs"}) {
    if (const obs::JsonValue* v = manifest.find(key)) {
      out.object.emplace_back(key, *v);
    }
  }
  return out;
}

DiffResult diff_manifests(const obs::JsonValue& golden,
                          const obs::JsonValue& current,
                          const DiffOptions& options) {
  DiffResult out;
  const double ref_version = golden.number_or("schema_version", 0.0);
  const double cur_version = current.number_or("schema_version", 0.0);
  if (ref_version != cur_version) {
    out.regressions.push_back(
        "schema_version " + std::to_string(static_cast<int>(ref_version)) +
        " -> " + std::to_string(static_cast<int>(cur_version)));
    return out;
  }
  diff_rows(golden, current, "arcs", arc_key, diff_arc, options, out);
  diff_rows(golden, current, "endpoints", endpoint_key,
            diff_golden_and_models, options, out);
  for (const std::string& section : options.sections) {
    const obs::JsonValue* ref = golden.find(section);
    const obs::JsonValue* cur = current.find(section);
    if (ref == nullptr && cur == nullptr) {
      out.notes.push_back("section " + section + ": absent from both");
      continue;
    }
    if (ref == nullptr || cur == nullptr) {
      out.regressions.push_back("section " + section +
                                (ref == nullptr ? ": appeared"
                                                : ": disappeared"));
      continue;
    }
    diff_json(*ref, *cur, section, options, out);
  }
  return out;
}

DiffResult diff_perf(const obs::JsonValue& baseline,
                     const obs::JsonValue& current,
                     const PerfBudget& budget) {
  DiffResult out;
  const auto check = [&](double ref, double cur, double slack,
                         const std::string& where, const char* unit) {
    const double limit = ref * (1.0 + budget.pct / 100.0) + slack;
    if (cur > limit) {
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "%s: %.3g -> %.3g %s (budget %.3g = +%g%% +%g)",
                    where.c_str(), ref, cur, unit, limit, budget.pct, slack);
      out.regressions.emplace_back(buf);
    }
  };

  const obs::JsonValue* ref_stages = baseline.find("stages");
  const obs::JsonValue* cur_stages = current.find("stages");
  if (ref_stages != nullptr && ref_stages->is_object()) {
    for (const auto& [name, ref_stage] : ref_stages->object) {
      const obs::JsonValue* cur_stage =
          (cur_stages != nullptr) ? cur_stages->find(name) : nullptr;
      if (cur_stage == nullptr) {
        out.notes.push_back("stage " + name + ": absent from current");
        continue;
      }
      for (const char* field : {"wall_ms", "cpu_ms"}) {
        check(ref_stage.number_or(field, 0.0),
              cur_stage->number_or(field, 0.0), budget.abs_ms,
              "stage " + name + " " + field, "ms");
      }
    }
  }
  if (cur_stages != nullptr && cur_stages->is_object()) {
    for (const auto& [name, cur_stage] : cur_stages->object) {
      (void)cur_stage;
      if (ref_stages == nullptr || ref_stages->find(name) == nullptr) {
        out.notes.push_back("stage " + name + ": new (not in baseline)");
      }
    }
  }

  const obs::JsonValue* ref_res = baseline.find("resource");
  const obs::JsonValue* cur_res = current.find("resource");
  if (ref_res != nullptr && cur_res != nullptr) {
    check(ref_res->number_or("peak_rss_kb", 0.0),
          cur_res->number_or("peak_rss_kb", 0.0), budget.abs_kb,
          "resource peak_rss_kb", "kb");
    const double ref_cpu_ms = (ref_res->number_or("utime_s", 0.0) +
                               ref_res->number_or("stime_s", 0.0)) *
                              1e3;
    const double cur_cpu_ms = (cur_res->number_or("utime_s", 0.0) +
                               cur_res->number_or("stime_s", 0.0)) *
                              1e3;
    check(ref_cpu_ms, cur_cpu_ms, budget.abs_ms, "resource process_cpu_ms",
          "ms");
  } else if (ref_res != nullptr || cur_res != nullptr) {
    out.notes.push_back(std::string("resource section only in ") +
                        (ref_res != nullptr ? "baseline" : "current"));
  }
  return out;
}

std::optional<std::vector<FoldedStack>> parse_folded(std::string_view text,
                                                     std::string* error) {
  std::vector<FoldedStack> stacks;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++line_no;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;
    const std::size_t space = line.find_last_of(" \t");
    bool ok = space != std::string_view::npos && space + 1 < line.size();
    std::uint64_t count = 0;
    if (ok) {
      for (std::size_t i = space + 1; i < line.size(); ++i) {
        const char c = line[i];
        if (c < '0' || c > '9') {
          ok = false;
          break;
        }
        count = count * 10 + static_cast<std::uint64_t>(c - '0');
      }
    }
    if (!ok || count == 0) {
      if (error) {
        *error = "line " + std::to_string(line_no) +
                 ": expected `stack count`, got \"" + std::string(line) +
                 "\"";
      }
      return std::nullopt;
    }
    const std::string stack(line.substr(0, space));
    bool merged = false;
    for (FoldedStack& existing : stacks) {
      if (existing.stack == stack) {
        existing.count += count;
        merged = true;
        break;
      }
    }
    if (!merged) stacks.push_back({stack, count});
  }
  return stacks;
}

std::string render_flame(const std::vector<FoldedStack>& stacks,
                         std::size_t top_n) {
  std::uint64_t total = 0;
  for (const FoldedStack& s : stacks) total += s.count;
  std::string out = "total: " + std::to_string(total) + " samples, " +
                    std::to_string(stacks.size()) + " distinct stacks\n";
  if (total == 0) return out;
  const double pct = 100.0 / static_cast<double>(total);
  char buf[512];

  // Stage rollup: the root frame is the stage tag the profiler
  // recorded ("(untagged)" for samples outside any span).
  std::vector<std::pair<std::string, std::uint64_t>> stages;
  for (const FoldedStack& s : stacks) {
    const std::size_t semi = s.stack.find(';');
    const std::string stage = s.stack.substr(0, semi);
    bool merged = false;
    for (auto& [name, count] : stages) {
      if (name == stage) {
        count += s.count;
        merged = true;
        break;
      }
    }
    if (!merged) stages.emplace_back(stage, s.count);
  }
  std::sort(stages.begin(), stages.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  out += "\nstages:\n";
  for (const auto& [name, count] : stages) {
    std::snprintf(buf, sizeof(buf), "  %8llu (%5.1f%%) %s\n",
                  static_cast<unsigned long long>(count),
                  static_cast<double>(count) * pct, name.c_str());
    out += buf;
  }

  std::vector<const FoldedStack*> order;
  order.reserve(stacks.size());
  for (const FoldedStack& s : stacks) order.push_back(&s);
  std::sort(order.begin(), order.end(), [](const FoldedStack* a,
                                           const FoldedStack* b) {
    if (a->count != b->count) return a->count > b->count;
    return a->stack < b->stack;  // deterministic tie-break
  });
  if (order.size() > top_n) order.resize(top_n);
  out += "\ntop stacks:\n";
  for (const FoldedStack* s : order) {
    std::snprintf(buf, sizeof(buf), "  %8llu (%5.1f%%) %s\n",
                  static_cast<unsigned long long>(s->count),
                  static_cast<double>(s->count) * pct, s->stack.c_str());
    out += buf;
  }
  return out;
}

std::optional<std::string> render_access_log(std::string_view text,
                                             std::string* error) {
  struct OpRollup {
    std::uint64_t total = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t refused = 0;
    std::map<std::string, std::uint64_t> rungs;
    obs::TDigest queue_ms{64.0};
    obs::TDigest exec_ms{64.0};
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
  };
  std::map<std::string, OpRollup> ops;
  std::uint64_t records = 0;
  std::uint64_t malformed = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const std::optional<obs::JsonValue> doc = obs::json_parse(line);
    if (!doc || !doc->is_object()) {
      ++malformed;
      continue;
    }
    ++records;
    OpRollup& op = ops[doc->string_or("op", "?")];
    ++op.total;
    const std::string mode = doc->string_or("mode", "ok");
    const std::string status = doc->string_or("status", "?");
    if (mode == "refused") {
      ++op.refused;
    } else if (status == "ok") {
      ++op.ok;
      ++op.rungs[doc->string_or("degradation", "none")];
      op.queue_ms.add(doc->number_or("queue_ms", 0.0));
      op.exec_ms.add(doc->number_or("exec_ms", 0.0));
    } else {
      ++op.failed;
    }
    op.bytes_in += static_cast<std::uint64_t>(doc->number_or("bytes_in", 0));
    op.bytes_out +=
        static_cast<std::uint64_t>(doc->number_or("bytes_out", 0));
  }
  if (records == 0) {
    if (error) *error = "no valid access-log records";
    return std::nullopt;
  }
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "access log: %llu record(s), %llu malformed line(s)\n\n",
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(malformed));
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-10s %8s %8s %8s %8s %10s %10s\n", "op",
                "total", "ok", "failed", "refused", "q_p50/p99", "x_p50/p99");
  out += buf;
  for (const auto& [name, op] : ops) {
    const auto q = [](const obs::TDigest& d, double p) {
      return d.count() > 0.0 ? d.quantile(p) : 0.0;
    };
    std::snprintf(buf, sizeof(buf),
                  "%-10s %8llu %8llu %8llu %8llu %4.1f/%-5.1f %4.1f/%-5.1f\n",
                  name.c_str(), static_cast<unsigned long long>(op.total),
                  static_cast<unsigned long long>(op.ok),
                  static_cast<unsigned long long>(op.failed),
                  static_cast<unsigned long long>(op.refused),
                  q(op.queue_ms, 0.5), q(op.queue_ms, 0.99),
                  q(op.exec_ms, 0.5), q(op.exec_ms, 0.99));
    out += buf;
    if (!op.rungs.empty()) {
      out += "           degradation:";
      for (const auto& [rung, count] : op.rungs) {
        std::snprintf(buf, sizeof(buf), " %s=%llu", rung.c_str(),
                      static_cast<unsigned long long>(count));
        out += buf;
      }
      out += '\n';
    }
    std::snprintf(buf, sizeof(buf),
                  "           bytes: in=%llu out=%llu\n",
                  static_cast<unsigned long long>(op.bytes_in),
                  static_cast<unsigned long long>(op.bytes_out));
    out += buf;
  }
  return out;
}

int report_main(int argc, const char* const* argv) {
  const auto usage = [] {
    std::fprintf(
        stderr,
        "usage: lvf2_report show <manifest.json>\n"
        "       lvf2_report canon <manifest.json>\n"
        "       lvf2_report diff <golden.json> <current.json>"
        " [--rtol R] [--atol A] [--sections a,b,...]\n"
        "       lvf2_report perf <baseline.json> <current.json>"
        " [--budget-pct P] [--abs-ms M] [--abs-kb K]\n"
        "       lvf2_report flame <profile.folded> [--top N]\n"
        "       lvf2_report serve <access.log>\n"
        "exit: 0 ok, 1 diff/perf found a regression, 2 usage / IO error\n");
    return 2;
  };
  if (argc < 3) return usage();
  const std::string command = argv[1];
  std::string error;

  if (command == "show" || command == "canon") {
    const std::optional<obs::JsonValue> doc = load_manifest(argv[2], &error);
    if (!doc) {
      std::fprintf(stderr, "lvf2_report: %s\n", error.c_str());
      return 2;
    }
    if (command == "show") {
      std::fputs(render_manifest(*doc).c_str(), stdout);
    } else {
      std::fputs((obs::json_write(canonicalize(*doc)) + "\n").c_str(),
                 stdout);
    }
    return 0;
  }

  if (command == "diff") {
    if (argc < 4) return usage();
    DiffOptions options;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--rtol") == 0 && i + 1 < argc) {
        options.rtol = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--atol") == 0 && i + 1 < argc) {
        options.atol = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--sections") == 0 && i + 1 < argc) {
        std::string_view list = argv[++i];
        while (!list.empty()) {
          const std::size_t comma = list.find(',');
          const std::string_view item = list.substr(0, comma);
          if (!item.empty()) options.sections.emplace_back(item);
          if (comma == std::string_view::npos) break;
          list.remove_prefix(comma + 1);
        }
      } else {
        return usage();
      }
    }
    const std::optional<obs::JsonValue> golden =
        load_manifest(argv[2], &error);
    if (!golden) {
      std::fprintf(stderr, "lvf2_report: %s\n", error.c_str());
      return 2;
    }
    const std::optional<obs::JsonValue> current =
        load_manifest(argv[3], &error);
    if (!current) {
      std::fprintf(stderr, "lvf2_report: %s\n", error.c_str());
      return 2;
    }
    const DiffResult result = diff_manifests(*golden, *current, options);
    for (const std::string& note : result.notes) {
      std::printf("note: %s\n", note.c_str());
    }
    for (const std::string& regression : result.regressions) {
      std::printf("REGRESSION: %s\n", regression.c_str());
    }
    if (!result.ok()) {
      std::printf("lvf2_report: %zu regression(s) vs %s\n",
                  result.regressions.size(), argv[2]);
      return 1;
    }
    std::printf("lvf2_report: QoR matches %s (%zu note(s))\n", argv[2],
                result.notes.size());
    return 0;
  }

  if (command == "perf") {
    if (argc < 4) return usage();
    PerfBudget budget;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--budget-pct") == 0 && i + 1 < argc) {
        budget.pct = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--abs-ms") == 0 && i + 1 < argc) {
        budget.abs_ms = std::atof(argv[++i]);
      } else if (std::strcmp(argv[i], "--abs-kb") == 0 && i + 1 < argc) {
        budget.abs_kb = std::atof(argv[++i]);
      } else {
        return usage();
      }
    }
    const std::optional<obs::JsonValue> baseline =
        load_manifest(argv[2], &error);
    if (!baseline) {
      std::fprintf(stderr, "lvf2_report: %s\n", error.c_str());
      return 2;
    }
    const std::optional<obs::JsonValue> current =
        load_manifest(argv[3], &error);
    if (!current) {
      std::fprintf(stderr, "lvf2_report: %s\n", error.c_str());
      return 2;
    }
    const DiffResult result = diff_perf(*baseline, *current, budget);
    for (const std::string& note : result.notes) {
      std::printf("note: %s\n", note.c_str());
    }
    for (const std::string& regression : result.regressions) {
      std::printf("PERF REGRESSION: %s\n", regression.c_str());
    }
    if (!result.ok()) {
      std::printf("lvf2_report: %zu perf regression(s) vs %s\n",
                  result.regressions.size(), argv[2]);
      return 1;
    }
    std::printf("lvf2_report: perf within budget of %s (%zu note(s))\n",
                argv[2], result.notes.size());
    return 0;
  }

  if (command == "flame") {
    std::size_t top_n = 20;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
        const long n = std::atol(argv[++i]);
        if (n <= 0) return usage();
        top_n = static_cast<std::size_t>(n);
      } else {
        return usage();
      }
    }
    std::string text;
    if (!read_file(argv[2], text, &error)) {
      std::fprintf(stderr, "lvf2_report: %s\n", error.c_str());
      return 2;
    }
    const std::optional<std::vector<FoldedStack>> stacks =
        parse_folded(text, &error);
    if (!stacks) {
      std::fprintf(stderr, "lvf2_report: %s: %s\n", argv[2], error.c_str());
      return 2;
    }
    std::fputs(render_flame(*stacks, top_n).c_str(), stdout);
    return 0;
  }

  if (command == "serve") {
    std::string text;
    if (!read_file(argv[2], text, &error)) {
      std::fprintf(stderr, "lvf2_report: %s\n", error.c_str());
      return 2;
    }
    const std::optional<std::string> summary =
        render_access_log(text, &error);
    if (!summary) {
      std::fprintf(stderr, "lvf2_report: %s: %s\n", argv[2], error.c_str());
      return 2;
    }
    std::fputs(summary->c_str(), stdout);
    return 0;
  }
  return usage();
}

}  // namespace lvf2::tools
