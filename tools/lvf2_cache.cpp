// CLI wrapper of tools/cache_tool.h: inspect, collect, purge and
// verify a result-cache directory written under LVF2_CACHE.
// scripts/check.sh --cache runs `stats` and `verify` after the warm
// re-run as part of the incremental-characterization gate.

#include "cache_tool.h"

int main(int argc, char** argv) {
  return lvf2::tools::cache_tool_main(argc, argv);
}
