// lvf2d — the timing-query daemon. Serves the characterized paper
// library over a length-prefixed JSON protocol (see
// src/serve/protocol.h and README "Serving").
//
// Configuration is environment-first, matching every other lvf2
// sink:
//   LVF2_SERVE=unix:<path>|tcp:<port>   listen address (required
//                                       unless --listen is given)
//   LVF2_DEADLINE_MS=<ms>               default per-request budget
//   LVF2_MAX_INFLIGHT=<n>               concurrent dispatch width
//   LVF2_SERVE_QUEUE=<n>                admission queue capacity
//   LVF2_SERVE_LRU=<n>                  hot-entry LRU capacity
//   LVF2_SERVE_SAMPLES=<n>              MC samples per cold entry
//   LVF2_SERVE_GRID_STRIDE=<n>          reduced slew/load grid
// plus the usual LVF2_CACHE / LVF2_FAULTS / LVF2_MANIFEST /
// LVF2_METRICS knobs.
//
// SIGTERM / SIGINT begin a graceful drain: stop accepting, answer
// queued work from the degradation floor, finish in-flight computes,
// then exit 0 through main so the atexit sinks (metrics, manifest,
// cache flush) run. The handler only writes one byte to a self-pipe
// — everything non-async-signal-safe happens on the main thread.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

#include "serve/server.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  // write() is async-signal-safe; a full pipe just means a signal is
  // already pending, which is all we need.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lvf2;

  serve::ServerOptions options = serve::server_options_from_env();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen" && i + 1 < argc) {
      options.listen = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: lvf2d [--listen unix:<path>|tcp:<port>]\n"
                   "environment: LVF2_SERVE LVF2_DEADLINE_MS "
                   "LVF2_MAX_INFLIGHT LVF2_SERVE_QUEUE LVF2_SERVE_LRU "
                   "LVF2_SERVE_SAMPLES LVF2_SERVE_GRID_STRIDE\n");
      return 0;
    } else {
      std::fprintf(stderr, "lvf2d: unknown argument \"%s\"\n", arg.c_str());
      return 2;
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("lvf2d: pipe");
    return 1;
  }
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  serve::Server server(std::move(options));
  if (core::Status st = server.start(); !st.is_ok()) {
    std::fprintf(stderr, "lvf2d: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("lvf2d listening on %s%s\n",
              server.options().listen.c_str(),
              server.tcp_port() > 0
                  ? (" (port " + std::to_string(server.tcp_port()) + ")")
                        .c_str()
                  : "");
  std::fflush(stdout);

  // Block until a signal lands on the self-pipe.
  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "lvf2d: draining\n");
  server.request_stop();
  server.wait();
  // Normal return: atexit sinks (metrics, manifest with the serve
  // section, cache flush) write now.
  return 0;
}
