#pragma once
// Manifest reader/differ behind the lvf2_report CLI (and its tests):
// loads a run manifest written by obs::ManifestRecorder, renders it
// as a human-readable QoR table, canonicalizes it for golden-file
// commits, and diffs two manifests arc-by-arc with configurable
// relative tolerances. scripts/check.sh uses the diff as a tier-1
// QoR regression gate.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace lvf2::tools {

/// Tolerances of a manifest diff. A numeric QoR field regresses when
///   |cur - ref| > atol + rtol * max(|ref|, |cur|)
/// (symmetric, so swapping the operands cannot flip a verdict).
/// `sections` opts additional top-level manifest sections into the
/// diff (e.g. "exec", "resource", "profile", "stages", "metrics") —
/// they carry nondeterministic run telemetry and are skipped by
/// default so the zero-tolerance determinism gates compare QoR only.
struct DiffOptions {
  double rtol = 0.1;
  double atol = 1e-9;
  std::vector<std::string> sections;
};

/// Budget of a perf diff: `current` regresses a stage when
///   cur > ref * (1 + pct/100) + slack
/// where slack is abs_ms for wall/CPU times and abs_kb for peak RSS.
/// The generous defaults absorb shared-runner noise; tighten per gate.
struct PerfBudget {
  double pct = 50.0;      ///< relative headroom, percent
  double abs_ms = 50.0;   ///< absolute slack for time comparisons
  double abs_kb = 51200;  ///< absolute slack for peak RSS (50 MiB)
};

/// One aggregated folded-stack line: `stack` is the semicolon-joined
/// frame list (root first, stage tag at the root), `count` the summed
/// sample count across duplicate lines.
struct FoldedStack {
  std::string stack;
  std::uint64_t count = 0;
};

/// Outcome of a manifest diff. `regressions` fail the gate (non-zero
/// exit); `notes` are informational drift (extra arcs, EM iteration
/// count changes) that never fails by itself.
struct DiffResult {
  std::vector<std::string> regressions;
  std::vector<std::string> notes;
  bool ok() const { return regressions.empty(); }
};

/// Loads and parses a manifest file. Returns nullopt (with a one-line
/// description in `error`) on I/O failure, malformed JSON, or a
/// schema_version this reader does not understand.
std::optional<obs::JsonValue> load_manifest(const std::string& path,
                                            std::string* error = nullptr);

/// Renders a manifest as human-readable tables: config, stage
/// rollups, the per-arc QoR table and the endpoint table.
std::string render_manifest(const obs::JsonValue& manifest);

/// Canonical form for committed goldens: schema_version, tool, config
/// and the QoR tables (arcs, endpoints, yield_hs) only — the stages /
/// metrics sections carry
/// per-run timing noise and are dropped. Key order is preserved, so
/// the output is byte-stable across identical-seed reruns.
obs::JsonValue canonicalize(const obs::JsonValue& manifest);

/// Diffs `current` against the `golden` reference arc-by-arc (keyed
/// on table/cell/arc/metric/load_idx/slew_idx) and endpoint-by-
/// endpoint (keyed on path). Missing rows, status / degradation /
/// convergence flips and numeric drift beyond DiffOptions are
/// regressions; extra rows and EM iteration drift are notes.
DiffResult diff_manifests(const obs::JsonValue& golden,
                          const obs::JsonValue& current,
                          const DiffOptions& options = {});

/// Perf-budget diff of two manifests: per-stage wall_ms / cpu_ms from
/// the `stages` rollup, process CPU (utime+stime) and peak RSS from
/// the `resource` section. A value beyond the budget is a regression;
/// stages present on only one side are notes (perf gates care about
/// cost, not coverage — the QoR diff owns presence).
DiffResult diff_perf(const obs::JsonValue& baseline,
                     const obs::JsonValue& current,
                     const PerfBudget& budget = {});

/// Parses flamegraph folded-stack text (`stack count` per line,
/// count = last whitespace-separated token) and aggregates duplicate
/// stacks. Returns nullopt (with a one-line description in `error`)
/// on a malformed line; blank lines are skipped.
std::optional<std::vector<FoldedStack>> parse_folded(
    std::string_view text, std::string* error = nullptr);

/// Renders a folded profile as a per-stage sample rollup (stage = the
/// root frame, i.e. the text before the first ';') followed by the
/// `top_n` hottest distinct stacks with counts and percentages.
std::string render_flame(const std::vector<FoldedStack>& stacks,
                         std::size_t top_n);

/// Summarizes an lvf2d access log (JSONL request traces written under
/// LVF2_ACCESS_LOG) as per-op rollups: request counts split
/// ok/failed/refused, the degradation-rung mix, and queue/exec
/// latency quantiles re-aggregated through a t-digest. Malformed
/// lines are skipped and counted. Returns nullopt (with a one-line
/// description in `error`) only when the text holds no valid record.
std::optional<std::string> render_access_log(std::string_view text,
                                             std::string* error = nullptr);

/// CLI entry point (exposed for tests):
/// `lvf2_report show|canon|diff|perf|flame|serve`. Returns 0 on
/// success, 1 on a diff/perf regression, 2 on usage/IO errors.
int report_main(int argc, const char* const* argv);

}  // namespace lvf2::tools
