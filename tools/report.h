#pragma once
// Manifest reader/differ behind the lvf2_report CLI (and its tests):
// loads a run manifest written by obs::ManifestRecorder, renders it
// as a human-readable QoR table, canonicalizes it for golden-file
// commits, and diffs two manifests arc-by-arc with configurable
// relative tolerances. scripts/check.sh uses the diff as a tier-1
// QoR regression gate.

#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"

namespace lvf2::tools {

/// Tolerances of a manifest diff. A numeric QoR field regresses when
///   |cur - ref| > atol + rtol * max(|ref|, |cur|)
/// (symmetric, so swapping the operands cannot flip a verdict).
struct DiffOptions {
  double rtol = 0.1;
  double atol = 1e-9;
};

/// Outcome of a manifest diff. `regressions` fail the gate (non-zero
/// exit); `notes` are informational drift (extra arcs, EM iteration
/// count changes) that never fails by itself.
struct DiffResult {
  std::vector<std::string> regressions;
  std::vector<std::string> notes;
  bool ok() const { return regressions.empty(); }
};

/// Loads and parses a manifest file. Returns nullopt (with a one-line
/// description in `error`) on I/O failure, malformed JSON, or a
/// schema_version this reader does not understand.
std::optional<obs::JsonValue> load_manifest(const std::string& path,
                                            std::string* error = nullptr);

/// Renders a manifest as human-readable tables: config, stage
/// rollups, the per-arc QoR table and the endpoint table.
std::string render_manifest(const obs::JsonValue& manifest);

/// Canonical form for committed goldens: schema_version, tool, config
/// and the QoR tables only — the stages / metrics sections carry
/// per-run timing noise and are dropped. Key order is preserved, so
/// the output is byte-stable across identical-seed reruns.
obs::JsonValue canonicalize(const obs::JsonValue& manifest);

/// Diffs `current` against the `golden` reference arc-by-arc (keyed
/// on table/cell/arc/metric/load_idx/slew_idx) and endpoint-by-
/// endpoint (keyed on path). Missing rows, status / degradation /
/// convergence flips and numeric drift beyond DiffOptions are
/// regressions; extra rows and EM iteration drift are notes.
DiffResult diff_manifests(const obs::JsonValue& golden,
                          const obs::JsonValue& current,
                          const DiffOptions& options = {});

/// CLI entry point (exposed for tests): `lvf2_report show|canon|diff`.
/// Returns 0 on success, 1 on diff regression, 2 on usage/IO errors.
int report_main(int argc, const char* const* argv);

}  // namespace lvf2::tools
