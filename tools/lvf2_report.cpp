// CLI wrapper of tools/report.h: render, canonicalize and diff run
// manifests written under LVF2_MANIFEST. scripts/check.sh runs
//   lvf2_report diff scripts/golden/qor_manifest.json <fresh run>
// as the QoR regression gate.

#include "report.h"

int main(int argc, char** argv) {
  return lvf2::tools::report_main(argc, argv);
}
