#pragma once
// Result-cache maintenance behind the lvf2_cache CLI (and its tests):
// stats over a cache directory, garbage collection of stale-salt /
// undecodable entries, full purge, and verification — re-running a
// sampled subset of entries from their recorded inputs and comparing
// against the stored results bitwise.

#include <string>

namespace lvf2::tools {

/// CLI entry point (exposed for tests):
///   lvf2_cache stats  <dir>
///   lvf2_cache gc     <dir>
///   lvf2_cache purge  <dir>
///   lvf2_cache verify <dir> [--sample N] [--seed S]
/// Returns 0 on success, 1 when verify found a mismatch, 2 on
/// usage/IO errors.
int cache_tool_main(int argc, const char* const* argv);

}  // namespace lvf2::tools
