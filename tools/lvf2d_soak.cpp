// lvf2d_soak — multi-client soak harness for the daemon. Drives N
// mixed queries from several concurrent connections against a running
// lvf2d (typically one with LVF2_FAULTS arming the socket/cache I/O
// faults and a warm readonly cache) and asserts the survival
// contract on every response:
//
//   - every response parses, echoes a sent id, and carries a valid
//     canonical status code AND a valid degradation tag;
//   - a request that carried a deadline and was answered ok reports a
//     server-side elapsed_ms within deadline + slack (the
//     "deadline + one checkpoint interval" guarantee, with scheduler
//     headroom);
//   - transient rejections (resource_exhausted / unavailable) honor
//     the retry contract: back off per the server's retry_after_ms
//     hint and try again — they must not be terminal;
//   - hard injected socket faults may kill a connection, never the
//     server: the client reconnects and keeps going.
//
// Exit 0 when every invariant held and enough requests were answered;
// 1 with a diagnostic otherwise.
//
//   - transient refusals name the server-minted request id in their
//     error payload ("request <rid> not admitted"), so a refusal is
//     attributable in logs;
//   - with --scrape-every N, every Nth request is preceded by a
//     `metrics` op scrape whose snapshot must be well-formed and
//     whose live accepted/responded counters must reconcile.
//
// usage: lvf2d_soak --connect unix:<path>|tcp:<port>
//                   [--n 200] [--clients 4] [--deadline-ms 50]
//                   [--min-answered-pct 90] [--scrape-every N]

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cells/library.h"
#include "core/status.h"
#include "obs/json.h"
#include "serve/protocol.h"

namespace {

using namespace lvf2;

struct SoakConfig {
  std::string connect = "unix:/tmp/lvf2d.sock";
  std::size_t n = 200;
  std::size_t clients = 4;
  double deadline_ms = 50.0;       ///< budget on deadline-tagged requests
  double deadline_slack_ms = 500;  ///< checkpoint interval + scheduler room
  double min_answered_pct = 90.0;
  std::size_t scrape_every = 0;  ///< 0 = no mid-soak metrics scrapes
  std::uint64_t seed = 0x50AC;
};

struct SoakTally {
  std::atomic<std::uint64_t> answered_ok{0};
  std::atomic<std::uint64_t> answered_error{0};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> retried{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> scrapes{0};
  std::atomic<std::uint64_t> violations{0};
  std::mutex log_mutex;

  void violation(const std::string& what) {
    violations.fetch_add(1);
    std::lock_guard<std::mutex> lock(log_mutex);
    std::fprintf(stderr, "soak: VIOLATION: %s\n", what.c_str());
  }
};

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int connect_to(const std::string& target) {
  if (target.rfind("unix:", 0) == 0) {
    const std::string path = target.substr(5);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return -1;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  if (target.rfind("tcp:", 0) == 0) {
    const int port = std::atoi(target.c_str() + 4);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  return -1;
}

bool valid_status_name(const std::string& name) {
  return name == core::to_string(core::status_code_from_name(name));
}

bool valid_degradation(const std::string& tag) {
  return tag == "none" || tag == "cached" || tag == "single_sn" ||
         tag == "point_mass";
}

struct RequestSpec {
  std::string body;
  std::uint64_t id = 0;
  double deadline_ms = 0.0;  ///< 0 = none sent
};

// One deterministic mixed query. ~10% address unknown cells/arcs (the
// not_found path must answer, not kill connections), ~40% carry a
// deadline, ops cycle through the whole surface.
RequestSpec make_request(const SoakConfig& config,
                         const std::vector<std::string>& cells,
                         std::uint64_t id, std::uint64_t& rng) {
  static const char* kOps[] = {"arc_dist", "bin",  "yield3",  "yield_hs",
                               "path_ssta", "ping", "stats"};
  RequestSpec spec;
  spec.id = id;
  const std::uint64_t r = splitmix64(rng);
  const char* op = kOps[r % 7];
  const bool bogus = (r >> 8) % 10 == 0;
  const bool with_deadline = (r >> 16) % 10 < 4;
  std::string body = "{\"id\":" + std::to_string(id) + ",\"op\":\"" + op +
                     "\"";
  if (with_deadline) {
    spec.deadline_ms = config.deadline_ms;
    body += ",\"deadline_ms\":";
    obs::json_append_number(body, spec.deadline_ms);
  }
  body += ",\"params\":{";
  if (std::strcmp(op, "ping") != 0 && std::strcmp(op, "stats") != 0) {
    const std::string cell =
        bogus ? "NO_SUCH_CELL" : cells[(r >> 24) % cells.size()];
    body += "\"cell\":";
    obs::json_append_string(body, cell);
    body += ",\"load_idx\":" + std::to_string((r >> 32) % 8);
    body += ",\"slew_idx\":" + std::to_string((r >> 40) % 8);
    if (std::strcmp(op, "path_ssta") == 0) {
      body += ",\"depth\":" + std::to_string(2 + (r >> 48) % 10);
    }
    if (std::strcmp(op, "yield_hs") == 0) {
      // Small sample cap: the soak exercises the op surface and the
      // deadline path, not IS convergence.
      body += ",\"sigma\":3,\"max_samples\":2048";
    }
  }
  body += "}}";
  spec.body = std::move(body);
  return spec;
}

// Sends one request, retrying transient rejections per the server's
// hint and reconnecting on connection loss. Returns false when the
// request never got an answer within the retry budget.
bool run_one(const SoakConfig& config, const RequestSpec& spec, int& fd,
             SoakTally& tally) {
  for (int attempt = 0; attempt < 6; ++attempt) {
    if (fd < 0) {
      fd = connect_to(config.connect);
      if (fd < 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
    }
    if (!serve::write_frame(fd, spec.body).is_ok()) {
      ::close(fd);
      fd = -1;
      tally.reconnects.fetch_add(1);
      continue;
    }
    std::string reply;
    if (!serve::read_frame(fd, reply).is_ok()) {
      // Injected hard faults legitimately drop connections; the
      // request may or may not have been answered server-side.
      ::close(fd);
      fd = -1;
      tally.reconnects.fetch_add(1);
      continue;
    }
    const std::optional<obs::JsonValue> doc = obs::json_parse(reply);
    if (!doc || !doc->is_object()) {
      tally.violation("response is not a JSON object: " + reply);
      return false;
    }
    const auto id = static_cast<std::uint64_t>(doc->number_or("id", 0.0));
    if (id != spec.id) {
      tally.violation("response id " + std::to_string(id) +
                      " != request id " + std::to_string(spec.id));
      return false;
    }
    const std::string status = doc->string_or("status", "");
    const std::string degradation = doc->string_or("degradation", "");
    if (!valid_status_name(status)) {
      tally.violation("invalid status \"" + status + "\" in: " + reply);
      return false;
    }
    if (!valid_degradation(degradation)) {
      tally.violation("invalid degradation \"" + degradation +
                      "\" in: " + reply);
      return false;
    }
    const core::StatusCode code = core::status_code_from_name(status);
    if (code == core::StatusCode::kResourceExhausted ||
        code == core::StatusCode::kUnavailable) {
      // A refusal must be attributable: drain / admission refusals
      // carry the server-minted request id in the error payload.
      const std::string error = doc->string_or("error", "");
      if (error.find("request ") == std::string::npos) {
        tally.violation("transient refusal without a request id: " + reply);
        return false;
      }
      // Backpressure: honor the hint and retry.
      tally.retried.fetch_add(1);
      const double hint = doc->number_or("retry_after_ms", 50.0);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int>(hint)));
      continue;
    }
    if (code == core::StatusCode::kOk) {
      if (spec.deadline_ms > 0.0) {
        const double elapsed = doc->number_or("elapsed_ms", 0.0);
        if (elapsed > spec.deadline_ms + config.deadline_slack_ms) {
          tally.violation("deadline " + std::to_string(spec.deadline_ms) +
                          "ms request took " + std::to_string(elapsed) +
                          "ms server-side");
          return false;
        }
      }
      if (degradation != "none") tally.degraded.fetch_add(1);
      tally.answered_ok.fetch_add(1);
    } else {
      tally.answered_error.fetch_add(1);
    }
    return true;
  }
  return false;
}

// One mid-soak `metrics` scrape. A transient refusal (drain /
// admission pressure) is not a failure — the scrape is skipped — but
// an ok answer must be a well-formed snapshot whose live
// accepted/responded counters reconcile: responded never exceeds
// accepted, and the gap is bounded by queued + in-flight work.
void scrape_metrics(const SoakConfig& config, int& fd, SoakTally& tally) {
  if (fd < 0) fd = connect_to(config.connect);
  if (fd < 0) return;
  const std::string body = "{\"id\":900000000,\"op\":\"metrics\"}";
  std::string reply;
  if (!serve::write_frame(fd, body).is_ok() ||
      !serve::read_frame(fd, reply).is_ok()) {
    ::close(fd);
    fd = -1;
    tally.reconnects.fetch_add(1);
    return;
  }
  const std::optional<obs::JsonValue> doc = obs::json_parse(reply);
  if (!doc || !doc->is_object()) {
    tally.violation("metrics scrape is not a JSON object: " + reply);
    return;
  }
  if (doc->string_or("status", "") != "ok") return;  // refusal: skip
  tally.scrapes.fetch_add(1);
  const obs::JsonValue* result = doc->find("result");
  if (result == nullptr || !result->is_object()) {
    tally.violation("metrics scrape has no result object");
    return;
  }
  const obs::JsonValue* ops = result->find("ops");
  if (ops == nullptr || !ops->is_object()) {
    tally.violation("metrics scrape has no ops object");
    return;
  }
  const obs::JsonValue* registry = result->find("registry");
  const obs::JsonValue* counters =
      registry != nullptr ? registry->find("counters") : nullptr;
  if (counters == nullptr || !counters->is_object()) {
    tally.violation("metrics scrape has no registry counters");
    return;
  }
  const double accepted = counters->number_or("serve.accepted", -1.0);
  const double responded = counters->number_or("serve.responded", -1.0);
  if (accepted < 0.0 || responded < 0.0) {
    tally.violation("metrics scrape lost serve.accepted/serve.responded");
    return;
  }
  // responded counts processed requests only, and every processed
  // request was first accepted; mid-soak the gap is the admission
  // queue plus the dispatch batch.
  if (responded > accepted || accepted - responded > 1024.0) {
    tally.violation("live counters do not reconcile: accepted=" +
                    std::to_string(accepted) +
                    " responded=" + std::to_string(responded));
  }
}

}  // namespace

int main(int argc, char** argv) {
  SoakConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--connect" && value != nullptr) {
      config.connect = value;
      ++i;
    } else if (arg == "--n" && value != nullptr) {
      config.n = static_cast<std::size_t>(std::atoll(value));
      ++i;
    } else if (arg == "--clients" && value != nullptr) {
      config.clients = static_cast<std::size_t>(std::atoll(value));
      ++i;
    } else if (arg == "--deadline-ms" && value != nullptr) {
      config.deadline_ms = std::atof(value);
      ++i;
    } else if (arg == "--min-answered-pct" && value != nullptr) {
      config.min_answered_pct = std::atof(value);
      ++i;
    } else if (arg == "--scrape-every" && value != nullptr) {
      config.scrape_every = static_cast<std::size_t>(std::atoll(value));
      ++i;
    } else {
      std::fprintf(stderr, "lvf2d_soak: unknown argument \"%s\"\n",
                   arg.c_str());
      return 2;
    }
  }
  if (config.clients == 0) config.clients = 1;

  std::vector<std::string> cell_names;
  const cells::StandardCellLibrary library = cells::build_paper_library();
  for (const cells::Cell& cell : library.cells()) {
    cell_names.push_back(cell.name);
  }

  SoakTally tally;
  std::atomic<std::uint64_t> next_id{1};
  std::vector<std::thread> workers;
  const std::size_t per_client =
      (config.n + config.clients - 1) / config.clients;
  for (std::size_t c = 0; c < config.clients; ++c) {
    workers.emplace_back([&, c] {
      std::uint64_t rng = config.seed + c * 0x9e3779b9ull;
      int fd = -1;
      for (std::size_t k = 0; k < per_client; ++k) {
        const std::uint64_t id = next_id.fetch_add(1);
        if (id > config.n) break;
        if (config.scrape_every != 0 && id % config.scrape_every == 0) {
          scrape_metrics(config, fd, tally);
        }
        const RequestSpec spec =
            make_request(config, cell_names, id, rng);
        run_one(config, spec, fd, tally);
      }
      if (fd >= 0) ::close(fd);
    });
  }
  for (std::thread& t : workers) t.join();

  const std::uint64_t answered =
      tally.answered_ok.load() + tally.answered_error.load();
  std::printf(
      "soak: sent=%zu answered=%llu ok=%llu error=%llu degraded=%llu "
      "retries=%llu reconnects=%llu scrapes=%llu violations=%llu\n",
      config.n, static_cast<unsigned long long>(answered),
      static_cast<unsigned long long>(tally.answered_ok.load()),
      static_cast<unsigned long long>(tally.answered_error.load()),
      static_cast<unsigned long long>(tally.degraded.load()),
      static_cast<unsigned long long>(tally.retried.load()),
      static_cast<unsigned long long>(tally.reconnects.load()),
      static_cast<unsigned long long>(tally.scrapes.load()),
      static_cast<unsigned long long>(tally.violations.load()));
  if (tally.violations.load() != 0) return 1;
  const double answered_pct =
      100.0 * static_cast<double>(answered) /
      static_cast<double>(config.n == 0 ? 1 : config.n);
  if (answered_pct < config.min_answered_pct) {
    std::fprintf(stderr, "soak: only %.1f%% of requests answered (need %.1f%%)\n",
                 answered_pct, config.min_answered_pct);
    return 1;
  }
  return 0;
}
