// lvf2_top — polling terminal monitor for a running lvf2d. Sends the
// `metrics` protocol op on an interval and renders the snapshot as a
// compact dashboard: per-op QPS (1s/10s/60s windows), p50/p95/p99
// latency split queue/exec, the degradation-rung mix, and SLO burn
// against the configured deadline budget (deadline compliance plus
// the deadline population's p99 queue+exec against the budget).
//
// usage: lvf2_top --connect unix:<path>|tcp:<port>
//                 [--interval-ms 1000] [--count N] [--once]
//                 [--prometheus]
//
//   --once        one snapshot, no screen clearing (scripting)
//   --prometheus  print the raw Prometheus text exposition instead of
//                 the dashboard (check.sh scrapes the soak this way)
//
// Exit 0 after --count/--once snapshots; 2 when the daemon cannot be
// reached or answers garbage.

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/protocol.h"

namespace {

using namespace lvf2;

int connect_to(const std::string& target) {
  if (target.rfind("unix:", 0) == 0) {
    const std::string path = target.substr(5);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return -1;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  if (target.rfind("tcp:", 0) == 0) {
    const int port = std::atoi(target.c_str() + 4);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  return -1;
}

/// One metrics round-trip. Returns the response's "result" value, or
/// nullopt on any transport/protocol failure (diagnostic on stderr).
std::optional<obs::JsonValue> fetch(int& fd, const std::string& target,
                                    bool prometheus) {
  if (fd < 0) fd = connect_to(target);
  if (fd < 0) {
    std::fprintf(stderr, "lvf2_top: cannot connect to %s\n", target.c_str());
    return std::nullopt;
  }
  static std::uint64_t next_id = 1;
  std::string body = "{\"id\":" + std::to_string(next_id++) +
                     ",\"op\":\"metrics\"";
  if (prometheus) body += ",\"params\":{\"format\":\"prometheus\"}";
  body += "}";
  std::string reply;
  if (!serve::write_frame(fd, body).is_ok() ||
      !serve::read_frame(fd, reply).is_ok()) {
    ::close(fd);
    fd = -1;
    std::fprintf(stderr, "lvf2_top: connection to %s lost\n", target.c_str());
    return std::nullopt;
  }
  const std::optional<obs::JsonValue> doc = obs::json_parse(reply);
  if (!doc || !doc->is_object()) {
    std::fprintf(stderr, "lvf2_top: unparseable response\n");
    return std::nullopt;
  }
  if (doc->string_or("status", "") != "ok") {
    std::fprintf(stderr, "lvf2_top: metrics op failed: %s\n",
                 doc->string_or("error", "?").c_str());
    return std::nullopt;
  }
  const obs::JsonValue* result = doc->find("result");
  if (result == nullptr) {
    std::fprintf(stderr, "lvf2_top: response has no result\n");
    return std::nullopt;
  }
  return *result;
}

double q_of(const obs::JsonValue& row, const char* block, const char* q) {
  if (const obs::JsonValue* b = row.find(block); b != nullptr) {
    return b->number_or(q, 0.0);
  }
  return 0.0;
}

void render(const obs::JsonValue& snap) {
  std::printf("lvf2d  up %.0fs  queue %d  inflight %d  budget %.0fms\n",
              snap.number_or("uptime_s", 0.0),
              static_cast<int>(snap.number_or("queue_depth", 0.0)),
              static_cast<int>(snap.number_or("inflight", 0.0)),
              snap.number_or("deadline_budget_ms", 0.0));
  std::printf(
      "%-10s %7s %7s %6s %6s | %6s %6s %6s | %6s %6s %6s | %7s\n", "op",
      "req", "resp", "qps1s", "qps10", "q_p50", "q_p95", "q_p99", "x_p50",
      "x_p95", "x_p99", "slo");
  const obs::JsonValue* ops = snap.find("ops");
  if (ops == nullptr || !ops->is_object()) return;
  for (const auto& [name, row] : ops->object) {
    const double dl_total = q_of(row, "deadline", "total");
    std::string slo = "-";
    if (dl_total > 0.0) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%5.1f%%",
                    100.0 * q_of(row, "deadline", "compliance"));
      slo = buf;
    }
    std::printf(
        "%-10s %7.0f %7.0f %6.0f %6.1f | %6.1f %6.1f %6.1f | %6.1f %6.1f "
        "%6.1f | %7s\n",
        name.c_str(), row.number_or("requests", 0.0),
        row.number_or("responded", 0.0), row.number_or("rate_1s", 0.0),
        row.number_or("rate_10s", 0.0) / 10.0, q_of(row, "queue_ms", "p50"),
        q_of(row, "queue_ms", "p95"), q_of(row, "queue_ms", "p99"),
        q_of(row, "exec_ms", "p50"), q_of(row, "exec_ms", "p95"),
        q_of(row, "exec_ms", "p99"), slo.c_str());
    if (const obs::JsonValue* rungs = row.find("degradation");
        rungs != nullptr && rungs->is_object()) {
      std::string mix;
      for (const auto& [rung, count] : rungs->object) {
        const double n =
            count.type == obs::JsonValue::Type::kNumber ? count.number : 0.0;
        if (n <= 0.0 || rung == "none") continue;
        mix += ' ' + rung + '=' + std::to_string(static_cast<long long>(n));
      }
      if (!mix.empty()) std::printf("           degraded:%s\n", mix.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect = "unix:/tmp/lvf2d.sock";
  int interval_ms = 1000;
  long count = 0;  // 0 = forever
  bool once = false;
  bool prometheus = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--connect" && value != nullptr) {
      connect = value;
      ++i;
    } else if (arg == "--interval-ms" && value != nullptr) {
      interval_ms = std::atoi(value);
      ++i;
    } else if (arg == "--count" && value != nullptr) {
      count = std::atol(value);
      ++i;
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--prometheus") {
      prometheus = true;
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr,
                   "usage: lvf2_top --connect unix:<path>|tcp:<port> "
                   "[--interval-ms N] [--count N] [--once] [--json] "
                   "[--prometheus]\n");
      return 2;
    }
  }
  if (once) count = 1;
  if (interval_ms < 10) interval_ms = 10;

  int fd = -1;
  long shown = 0;
  while (count == 0 || shown < count) {
    const std::optional<obs::JsonValue> snap =
        fetch(fd, connect, prometheus);
    if (!snap) {
      if (fd >= 0) ::close(fd);
      return 2;
    }
    if (prometheus) {
      std::fputs(snap->string_or("text", "").c_str(), stdout);
    } else if (json) {
      std::printf("%s\n", obs::json_write(*snap).c_str());
    } else {
      if (!once && shown > 0) std::printf("\n");
      render(*snap);
    }
    std::fflush(stdout);
    ++shown;
    if (count != 0 && shown >= count) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  if (fd >= 0) ::close(fd);
  return 0;
}
