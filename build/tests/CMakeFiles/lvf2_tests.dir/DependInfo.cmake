
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_block_ssta.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_block_ssta.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_block_ssta.cpp.o.d"
  "/root/repo/tests/test_cells.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_cells.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_cells.cpp.o.d"
  "/root/repo/tests/test_cellsim.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_cellsim.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_cellsim.cpp.o.d"
  "/root/repo/tests/test_characterize.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_characterize.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_characterize.cpp.o.d"
  "/root/repo/tests/test_circuits.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_circuits.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_circuits.cpp.o.d"
  "/root/repo/tests/test_descriptive.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_descriptive.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_descriptive.cpp.o.d"
  "/root/repo/tests/test_em.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_em.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_em.cpp.o.d"
  "/root/repo/tests/test_extended_skew_normal.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_extended_skew_normal.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_extended_skew_normal.cpp.o.d"
  "/root/repo/tests/test_grid_pdf.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_grid_pdf.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_grid_pdf.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_kmeans.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_kmeans.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_kmeans.cpp.o.d"
  "/root/repo/tests/test_lhs.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_lhs.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_lhs.cpp.o.d"
  "/root/repo/tests/test_liberty_parse.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_liberty_parse.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_liberty_parse.cpp.o.d"
  "/root/repo/tests/test_log_normal.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_log_normal.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_log_normal.cpp.o.d"
  "/root/repo/tests/test_lvf_tables.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_lvf_tables.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_lvf_tables.cpp.o.d"
  "/root/repo/tests/test_lvfk_model.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_lvfk_model.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_lvfk_model.cpp.o.d"
  "/root/repo/tests/test_mc_ssta.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_mc_ssta.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_mc_ssta.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_mixture_ops.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_mixture_ops.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_mixture_ops.cpp.o.d"
  "/root/repo/tests/test_montecarlo.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_montecarlo.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_montecarlo.cpp.o.d"
  "/root/repo/tests/test_normal.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_normal.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_normal.cpp.o.d"
  "/root/repo/tests/test_optimize.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_optimize.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_optimize.cpp.o.d"
  "/root/repo/tests/test_path_analysis.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_path_analysis.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_path_analysis.cpp.o.d"
  "/root/repo/tests/test_pattern_guided.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_pattern_guided.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_pattern_guided.cpp.o.d"
  "/root/repo/tests/test_process_device.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_process_device.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_process_device.cpp.o.d"
  "/root/repo/tests/test_refit.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_refit.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_refit.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_skew_normal.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_skew_normal.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_skew_normal.cpp.o.d"
  "/root/repo/tests/test_special_functions.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_special_functions.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_special_functions.cpp.o.d"
  "/root/repo/tests/test_timing_graph.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_timing_graph.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_timing_graph.cpp.o.d"
  "/root/repo/tests/test_timing_models.cpp" "tests/CMakeFiles/lvf2_tests.dir/test_timing_models.cpp.o" "gcc" "tests/CMakeFiles/lvf2_tests.dir/test_timing_models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lvf2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lvf2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/lvf2_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/lvf2_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/lvf2_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/ssta/CMakeFiles/lvf2_ssta.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/lvf2_circuits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
