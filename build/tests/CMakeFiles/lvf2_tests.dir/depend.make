# Empty dependencies file for lvf2_tests.
# This may be replaced when dependencies are built.
