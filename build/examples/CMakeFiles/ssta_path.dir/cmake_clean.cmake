file(REMOVE_RECURSE
  "CMakeFiles/ssta_path.dir/ssta_path.cpp.o"
  "CMakeFiles/ssta_path.dir/ssta_path.cpp.o.d"
  "ssta_path"
  "ssta_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssta_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
