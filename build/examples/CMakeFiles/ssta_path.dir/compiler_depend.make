# Empty compiler generated dependencies file for ssta_path.
# This may be replaced when dependencies are built.
