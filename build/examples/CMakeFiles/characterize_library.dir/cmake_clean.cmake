file(REMOVE_RECURSE
  "CMakeFiles/characterize_library.dir/characterize_library.cpp.o"
  "CMakeFiles/characterize_library.dir/characterize_library.cpp.o.d"
  "characterize_library"
  "characterize_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
