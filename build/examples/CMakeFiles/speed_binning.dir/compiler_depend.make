# Empty compiler generated dependencies file for speed_binning.
# This may be replaced when dependencies are built.
