file(REMOVE_RECURSE
  "CMakeFiles/speed_binning.dir/speed_binning.cpp.o"
  "CMakeFiles/speed_binning.dir/speed_binning.cpp.o.d"
  "speed_binning"
  "speed_binning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
