# Empty dependencies file for bench_clt_convergence.
# This may be replaced when dependencies are built.
