file(REMOVE_RECURSE
  "CMakeFiles/bench_clt_convergence.dir/bench_clt_convergence.cpp.o"
  "CMakeFiles/bench_clt_convergence.dir/bench_clt_convergence.cpp.o.d"
  "bench_clt_convergence"
  "bench_clt_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clt_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
