# Empty compiler generated dependencies file for bench_pattern_guided.
# This may be replaced when dependencies are built.
