file(REMOVE_RECURSE
  "CMakeFiles/bench_pattern_guided.dir/bench_pattern_guided.cpp.o"
  "CMakeFiles/bench_pattern_guided.dir/bench_pattern_guided.cpp.o.d"
  "bench_pattern_guided"
  "bench_pattern_guided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pattern_guided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
