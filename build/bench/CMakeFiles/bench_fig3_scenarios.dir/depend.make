# Empty dependencies file for bench_fig3_scenarios.
# This may be replaced when dependencies are built.
