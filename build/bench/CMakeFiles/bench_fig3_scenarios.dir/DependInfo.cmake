
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_scenarios.cpp" "bench/CMakeFiles/bench_fig3_scenarios.dir/bench_fig3_scenarios.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_scenarios.dir/bench_fig3_scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lvf2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lvf2_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/lvf2_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/lvf2_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/liberty/CMakeFiles/lvf2_liberty.dir/DependInfo.cmake"
  "/root/repo/build/src/ssta/CMakeFiles/lvf2_ssta.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/lvf2_circuits.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
