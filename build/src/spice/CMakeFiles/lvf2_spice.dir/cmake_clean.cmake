file(REMOVE_RECURSE
  "CMakeFiles/lvf2_spice.dir/cellsim.cpp.o"
  "CMakeFiles/lvf2_spice.dir/cellsim.cpp.o.d"
  "CMakeFiles/lvf2_spice.dir/device.cpp.o"
  "CMakeFiles/lvf2_spice.dir/device.cpp.o.d"
  "CMakeFiles/lvf2_spice.dir/montecarlo.cpp.o"
  "CMakeFiles/lvf2_spice.dir/montecarlo.cpp.o.d"
  "CMakeFiles/lvf2_spice.dir/process.cpp.o"
  "CMakeFiles/lvf2_spice.dir/process.cpp.o.d"
  "liblvf2_spice.a"
  "liblvf2_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvf2_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
