# Empty dependencies file for lvf2_spice.
# This may be replaced when dependencies are built.
