
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/cellsim.cpp" "src/spice/CMakeFiles/lvf2_spice.dir/cellsim.cpp.o" "gcc" "src/spice/CMakeFiles/lvf2_spice.dir/cellsim.cpp.o.d"
  "/root/repo/src/spice/device.cpp" "src/spice/CMakeFiles/lvf2_spice.dir/device.cpp.o" "gcc" "src/spice/CMakeFiles/lvf2_spice.dir/device.cpp.o.d"
  "/root/repo/src/spice/montecarlo.cpp" "src/spice/CMakeFiles/lvf2_spice.dir/montecarlo.cpp.o" "gcc" "src/spice/CMakeFiles/lvf2_spice.dir/montecarlo.cpp.o.d"
  "/root/repo/src/spice/process.cpp" "src/spice/CMakeFiles/lvf2_spice.dir/process.cpp.o" "gcc" "src/spice/CMakeFiles/lvf2_spice.dir/process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/lvf2_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
