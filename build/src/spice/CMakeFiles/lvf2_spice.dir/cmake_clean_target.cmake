file(REMOVE_RECURSE
  "liblvf2_spice.a"
)
