file(REMOVE_RECURSE
  "liblvf2_liberty.a"
)
