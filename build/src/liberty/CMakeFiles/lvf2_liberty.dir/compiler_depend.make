# Empty compiler generated dependencies file for lvf2_liberty.
# This may be replaced when dependencies are built.
