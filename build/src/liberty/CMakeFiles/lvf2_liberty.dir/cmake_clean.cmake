file(REMOVE_RECURSE
  "CMakeFiles/lvf2_liberty.dir/ast.cpp.o"
  "CMakeFiles/lvf2_liberty.dir/ast.cpp.o.d"
  "CMakeFiles/lvf2_liberty.dir/lexer.cpp.o"
  "CMakeFiles/lvf2_liberty.dir/lexer.cpp.o.d"
  "CMakeFiles/lvf2_liberty.dir/lvf_tables.cpp.o"
  "CMakeFiles/lvf2_liberty.dir/lvf_tables.cpp.o.d"
  "CMakeFiles/lvf2_liberty.dir/parser.cpp.o"
  "CMakeFiles/lvf2_liberty.dir/parser.cpp.o.d"
  "CMakeFiles/lvf2_liberty.dir/writer.cpp.o"
  "CMakeFiles/lvf2_liberty.dir/writer.cpp.o.d"
  "liblvf2_liberty.a"
  "liblvf2_liberty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvf2_liberty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
