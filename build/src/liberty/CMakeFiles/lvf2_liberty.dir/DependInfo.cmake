
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/liberty/ast.cpp" "src/liberty/CMakeFiles/lvf2_liberty.dir/ast.cpp.o" "gcc" "src/liberty/CMakeFiles/lvf2_liberty.dir/ast.cpp.o.d"
  "/root/repo/src/liberty/lexer.cpp" "src/liberty/CMakeFiles/lvf2_liberty.dir/lexer.cpp.o" "gcc" "src/liberty/CMakeFiles/lvf2_liberty.dir/lexer.cpp.o.d"
  "/root/repo/src/liberty/lvf_tables.cpp" "src/liberty/CMakeFiles/lvf2_liberty.dir/lvf_tables.cpp.o" "gcc" "src/liberty/CMakeFiles/lvf2_liberty.dir/lvf_tables.cpp.o.d"
  "/root/repo/src/liberty/parser.cpp" "src/liberty/CMakeFiles/lvf2_liberty.dir/parser.cpp.o" "gcc" "src/liberty/CMakeFiles/lvf2_liberty.dir/parser.cpp.o.d"
  "/root/repo/src/liberty/writer.cpp" "src/liberty/CMakeFiles/lvf2_liberty.dir/writer.cpp.o" "gcc" "src/liberty/CMakeFiles/lvf2_liberty.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lvf2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/lvf2_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/lvf2_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lvf2_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
