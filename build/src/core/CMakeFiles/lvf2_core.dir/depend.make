# Empty dependencies file for lvf2_core.
# This may be replaced when dependencies are built.
