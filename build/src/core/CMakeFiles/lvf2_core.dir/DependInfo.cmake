
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/binning.cpp" "src/core/CMakeFiles/lvf2_core.dir/binning.cpp.o" "gcc" "src/core/CMakeFiles/lvf2_core.dir/binning.cpp.o.d"
  "/root/repo/src/core/em.cpp" "src/core/CMakeFiles/lvf2_core.dir/em.cpp.o" "gcc" "src/core/CMakeFiles/lvf2_core.dir/em.cpp.o.d"
  "/root/repo/src/core/lesn_model.cpp" "src/core/CMakeFiles/lvf2_core.dir/lesn_model.cpp.o" "gcc" "src/core/CMakeFiles/lvf2_core.dir/lesn_model.cpp.o.d"
  "/root/repo/src/core/lvf2_model.cpp" "src/core/CMakeFiles/lvf2_core.dir/lvf2_model.cpp.o" "gcc" "src/core/CMakeFiles/lvf2_core.dir/lvf2_model.cpp.o.d"
  "/root/repo/src/core/lvf_model.cpp" "src/core/CMakeFiles/lvf2_core.dir/lvf_model.cpp.o" "gcc" "src/core/CMakeFiles/lvf2_core.dir/lvf_model.cpp.o.d"
  "/root/repo/src/core/lvfk_model.cpp" "src/core/CMakeFiles/lvf2_core.dir/lvfk_model.cpp.o" "gcc" "src/core/CMakeFiles/lvf2_core.dir/lvfk_model.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/lvf2_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/lvf2_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/mixture_ops.cpp" "src/core/CMakeFiles/lvf2_core.dir/mixture_ops.cpp.o" "gcc" "src/core/CMakeFiles/lvf2_core.dir/mixture_ops.cpp.o.d"
  "/root/repo/src/core/model_factory.cpp" "src/core/CMakeFiles/lvf2_core.dir/model_factory.cpp.o" "gcc" "src/core/CMakeFiles/lvf2_core.dir/model_factory.cpp.o.d"
  "/root/repo/src/core/norm2_model.cpp" "src/core/CMakeFiles/lvf2_core.dir/norm2_model.cpp.o" "gcc" "src/core/CMakeFiles/lvf2_core.dir/norm2_model.cpp.o.d"
  "/root/repo/src/core/timing_model.cpp" "src/core/CMakeFiles/lvf2_core.dir/timing_model.cpp.o" "gcc" "src/core/CMakeFiles/lvf2_core.dir/timing_model.cpp.o.d"
  "/root/repo/src/core/yield.cpp" "src/core/CMakeFiles/lvf2_core.dir/yield.cpp.o" "gcc" "src/core/CMakeFiles/lvf2_core.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/lvf2_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
