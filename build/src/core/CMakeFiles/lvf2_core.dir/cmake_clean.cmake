file(REMOVE_RECURSE
  "CMakeFiles/lvf2_core.dir/binning.cpp.o"
  "CMakeFiles/lvf2_core.dir/binning.cpp.o.d"
  "CMakeFiles/lvf2_core.dir/em.cpp.o"
  "CMakeFiles/lvf2_core.dir/em.cpp.o.d"
  "CMakeFiles/lvf2_core.dir/lesn_model.cpp.o"
  "CMakeFiles/lvf2_core.dir/lesn_model.cpp.o.d"
  "CMakeFiles/lvf2_core.dir/lvf2_model.cpp.o"
  "CMakeFiles/lvf2_core.dir/lvf2_model.cpp.o.d"
  "CMakeFiles/lvf2_core.dir/lvf_model.cpp.o"
  "CMakeFiles/lvf2_core.dir/lvf_model.cpp.o.d"
  "CMakeFiles/lvf2_core.dir/lvfk_model.cpp.o"
  "CMakeFiles/lvf2_core.dir/lvfk_model.cpp.o.d"
  "CMakeFiles/lvf2_core.dir/metrics.cpp.o"
  "CMakeFiles/lvf2_core.dir/metrics.cpp.o.d"
  "CMakeFiles/lvf2_core.dir/mixture_ops.cpp.o"
  "CMakeFiles/lvf2_core.dir/mixture_ops.cpp.o.d"
  "CMakeFiles/lvf2_core.dir/model_factory.cpp.o"
  "CMakeFiles/lvf2_core.dir/model_factory.cpp.o.d"
  "CMakeFiles/lvf2_core.dir/norm2_model.cpp.o"
  "CMakeFiles/lvf2_core.dir/norm2_model.cpp.o.d"
  "CMakeFiles/lvf2_core.dir/timing_model.cpp.o"
  "CMakeFiles/lvf2_core.dir/timing_model.cpp.o.d"
  "CMakeFiles/lvf2_core.dir/yield.cpp.o"
  "CMakeFiles/lvf2_core.dir/yield.cpp.o.d"
  "liblvf2_core.a"
  "liblvf2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvf2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
