file(REMOVE_RECURSE
  "liblvf2_core.a"
)
