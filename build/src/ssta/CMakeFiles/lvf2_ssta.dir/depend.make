# Empty dependencies file for lvf2_ssta.
# This may be replaced when dependencies are built.
