file(REMOVE_RECURSE
  "CMakeFiles/lvf2_ssta.dir/block_ssta.cpp.o"
  "CMakeFiles/lvf2_ssta.dir/block_ssta.cpp.o.d"
  "CMakeFiles/lvf2_ssta.dir/mc_ssta.cpp.o"
  "CMakeFiles/lvf2_ssta.dir/mc_ssta.cpp.o.d"
  "CMakeFiles/lvf2_ssta.dir/path_analysis.cpp.o"
  "CMakeFiles/lvf2_ssta.dir/path_analysis.cpp.o.d"
  "CMakeFiles/lvf2_ssta.dir/timing_graph.cpp.o"
  "CMakeFiles/lvf2_ssta.dir/timing_graph.cpp.o.d"
  "liblvf2_ssta.a"
  "liblvf2_ssta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvf2_ssta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
