
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssta/block_ssta.cpp" "src/ssta/CMakeFiles/lvf2_ssta.dir/block_ssta.cpp.o" "gcc" "src/ssta/CMakeFiles/lvf2_ssta.dir/block_ssta.cpp.o.d"
  "/root/repo/src/ssta/mc_ssta.cpp" "src/ssta/CMakeFiles/lvf2_ssta.dir/mc_ssta.cpp.o" "gcc" "src/ssta/CMakeFiles/lvf2_ssta.dir/mc_ssta.cpp.o.d"
  "/root/repo/src/ssta/path_analysis.cpp" "src/ssta/CMakeFiles/lvf2_ssta.dir/path_analysis.cpp.o" "gcc" "src/ssta/CMakeFiles/lvf2_ssta.dir/path_analysis.cpp.o.d"
  "/root/repo/src/ssta/timing_graph.cpp" "src/ssta/CMakeFiles/lvf2_ssta.dir/timing_graph.cpp.o" "gcc" "src/ssta/CMakeFiles/lvf2_ssta.dir/timing_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lvf2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/lvf2_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/lvf2_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lvf2_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
