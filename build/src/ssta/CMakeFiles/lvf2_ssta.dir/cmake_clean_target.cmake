file(REMOVE_RECURSE
  "liblvf2_ssta.a"
)
