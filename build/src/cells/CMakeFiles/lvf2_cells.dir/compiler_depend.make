# Empty compiler generated dependencies file for lvf2_cells.
# This may be replaced when dependencies are built.
