file(REMOVE_RECURSE
  "liblvf2_cells.a"
)
