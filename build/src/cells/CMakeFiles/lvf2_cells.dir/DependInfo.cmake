
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/cell_types.cpp" "src/cells/CMakeFiles/lvf2_cells.dir/cell_types.cpp.o" "gcc" "src/cells/CMakeFiles/lvf2_cells.dir/cell_types.cpp.o.d"
  "/root/repo/src/cells/characterize.cpp" "src/cells/CMakeFiles/lvf2_cells.dir/characterize.cpp.o" "gcc" "src/cells/CMakeFiles/lvf2_cells.dir/characterize.cpp.o.d"
  "/root/repo/src/cells/library.cpp" "src/cells/CMakeFiles/lvf2_cells.dir/library.cpp.o" "gcc" "src/cells/CMakeFiles/lvf2_cells.dir/library.cpp.o.d"
  "/root/repo/src/cells/pattern_guided.cpp" "src/cells/CMakeFiles/lvf2_cells.dir/pattern_guided.cpp.o" "gcc" "src/cells/CMakeFiles/lvf2_cells.dir/pattern_guided.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lvf2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/lvf2_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lvf2_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
