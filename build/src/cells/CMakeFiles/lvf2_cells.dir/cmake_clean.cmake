file(REMOVE_RECURSE
  "CMakeFiles/lvf2_cells.dir/cell_types.cpp.o"
  "CMakeFiles/lvf2_cells.dir/cell_types.cpp.o.d"
  "CMakeFiles/lvf2_cells.dir/characterize.cpp.o"
  "CMakeFiles/lvf2_cells.dir/characterize.cpp.o.d"
  "CMakeFiles/lvf2_cells.dir/library.cpp.o"
  "CMakeFiles/lvf2_cells.dir/library.cpp.o.d"
  "CMakeFiles/lvf2_cells.dir/pattern_guided.cpp.o"
  "CMakeFiles/lvf2_cells.dir/pattern_guided.cpp.o.d"
  "liblvf2_cells.a"
  "liblvf2_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvf2_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
