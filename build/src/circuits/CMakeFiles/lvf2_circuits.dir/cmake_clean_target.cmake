file(REMOVE_RECURSE
  "liblvf2_circuits.a"
)
