
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/adder.cpp" "src/circuits/CMakeFiles/lvf2_circuits.dir/adder.cpp.o" "gcc" "src/circuits/CMakeFiles/lvf2_circuits.dir/adder.cpp.o.d"
  "/root/repo/src/circuits/htree.cpp" "src/circuits/CMakeFiles/lvf2_circuits.dir/htree.cpp.o" "gcc" "src/circuits/CMakeFiles/lvf2_circuits.dir/htree.cpp.o.d"
  "/root/repo/src/circuits/netlist.cpp" "src/circuits/CMakeFiles/lvf2_circuits.dir/netlist.cpp.o" "gcc" "src/circuits/CMakeFiles/lvf2_circuits.dir/netlist.cpp.o.d"
  "/root/repo/src/circuits/wire.cpp" "src/circuits/CMakeFiles/lvf2_circuits.dir/wire.cpp.o" "gcc" "src/circuits/CMakeFiles/lvf2_circuits.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ssta/CMakeFiles/lvf2_ssta.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/lvf2_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lvf2_core.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/lvf2_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lvf2_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
