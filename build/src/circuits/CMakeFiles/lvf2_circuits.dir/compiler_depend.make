# Empty compiler generated dependencies file for lvf2_circuits.
# This may be replaced when dependencies are built.
