src/circuits/CMakeFiles/lvf2_circuits.dir/wire.cpp.o: \
 /root/repo/src/circuits/wire.cpp /usr/include/stdc-predef.h \
 /root/repo/src/circuits/wire.h
