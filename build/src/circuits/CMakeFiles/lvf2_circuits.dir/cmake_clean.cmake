file(REMOVE_RECURSE
  "CMakeFiles/lvf2_circuits.dir/adder.cpp.o"
  "CMakeFiles/lvf2_circuits.dir/adder.cpp.o.d"
  "CMakeFiles/lvf2_circuits.dir/htree.cpp.o"
  "CMakeFiles/lvf2_circuits.dir/htree.cpp.o.d"
  "CMakeFiles/lvf2_circuits.dir/netlist.cpp.o"
  "CMakeFiles/lvf2_circuits.dir/netlist.cpp.o.d"
  "CMakeFiles/lvf2_circuits.dir/wire.cpp.o"
  "CMakeFiles/lvf2_circuits.dir/wire.cpp.o.d"
  "liblvf2_circuits.a"
  "liblvf2_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvf2_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
