file(REMOVE_RECURSE
  "CMakeFiles/lvf2_stats.dir/descriptive.cpp.o"
  "CMakeFiles/lvf2_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/lvf2_stats.dir/extended_skew_normal.cpp.o"
  "CMakeFiles/lvf2_stats.dir/extended_skew_normal.cpp.o.d"
  "CMakeFiles/lvf2_stats.dir/grid_pdf.cpp.o"
  "CMakeFiles/lvf2_stats.dir/grid_pdf.cpp.o.d"
  "CMakeFiles/lvf2_stats.dir/kmeans.cpp.o"
  "CMakeFiles/lvf2_stats.dir/kmeans.cpp.o.d"
  "CMakeFiles/lvf2_stats.dir/lhs.cpp.o"
  "CMakeFiles/lvf2_stats.dir/lhs.cpp.o.d"
  "CMakeFiles/lvf2_stats.dir/log_normal.cpp.o"
  "CMakeFiles/lvf2_stats.dir/log_normal.cpp.o.d"
  "CMakeFiles/lvf2_stats.dir/normal.cpp.o"
  "CMakeFiles/lvf2_stats.dir/normal.cpp.o.d"
  "CMakeFiles/lvf2_stats.dir/optimize.cpp.o"
  "CMakeFiles/lvf2_stats.dir/optimize.cpp.o.d"
  "CMakeFiles/lvf2_stats.dir/rng.cpp.o"
  "CMakeFiles/lvf2_stats.dir/rng.cpp.o.d"
  "CMakeFiles/lvf2_stats.dir/skew_normal.cpp.o"
  "CMakeFiles/lvf2_stats.dir/skew_normal.cpp.o.d"
  "CMakeFiles/lvf2_stats.dir/special_functions.cpp.o"
  "CMakeFiles/lvf2_stats.dir/special_functions.cpp.o.d"
  "liblvf2_stats.a"
  "liblvf2_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvf2_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
