# Empty dependencies file for lvf2_stats.
# This may be replaced when dependencies are built.
