
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/lvf2_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/lvf2_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/extended_skew_normal.cpp" "src/stats/CMakeFiles/lvf2_stats.dir/extended_skew_normal.cpp.o" "gcc" "src/stats/CMakeFiles/lvf2_stats.dir/extended_skew_normal.cpp.o.d"
  "/root/repo/src/stats/grid_pdf.cpp" "src/stats/CMakeFiles/lvf2_stats.dir/grid_pdf.cpp.o" "gcc" "src/stats/CMakeFiles/lvf2_stats.dir/grid_pdf.cpp.o.d"
  "/root/repo/src/stats/kmeans.cpp" "src/stats/CMakeFiles/lvf2_stats.dir/kmeans.cpp.o" "gcc" "src/stats/CMakeFiles/lvf2_stats.dir/kmeans.cpp.o.d"
  "/root/repo/src/stats/lhs.cpp" "src/stats/CMakeFiles/lvf2_stats.dir/lhs.cpp.o" "gcc" "src/stats/CMakeFiles/lvf2_stats.dir/lhs.cpp.o.d"
  "/root/repo/src/stats/log_normal.cpp" "src/stats/CMakeFiles/lvf2_stats.dir/log_normal.cpp.o" "gcc" "src/stats/CMakeFiles/lvf2_stats.dir/log_normal.cpp.o.d"
  "/root/repo/src/stats/normal.cpp" "src/stats/CMakeFiles/lvf2_stats.dir/normal.cpp.o" "gcc" "src/stats/CMakeFiles/lvf2_stats.dir/normal.cpp.o.d"
  "/root/repo/src/stats/optimize.cpp" "src/stats/CMakeFiles/lvf2_stats.dir/optimize.cpp.o" "gcc" "src/stats/CMakeFiles/lvf2_stats.dir/optimize.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/lvf2_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/lvf2_stats.dir/rng.cpp.o.d"
  "/root/repo/src/stats/skew_normal.cpp" "src/stats/CMakeFiles/lvf2_stats.dir/skew_normal.cpp.o" "gcc" "src/stats/CMakeFiles/lvf2_stats.dir/skew_normal.cpp.o.d"
  "/root/repo/src/stats/special_functions.cpp" "src/stats/CMakeFiles/lvf2_stats.dir/special_functions.cpp.o" "gcc" "src/stats/CMakeFiles/lvf2_stats.dir/special_functions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
