file(REMOVE_RECURSE
  "liblvf2_stats.a"
)
